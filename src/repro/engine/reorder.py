"""Reorder buffer — restores arrival order at the engine's output.

Parallel dispatch completes lookups out of order, which is why step III
tags every address with a sequence number.  The buffer holds completions
until all earlier tags have been released; its peak occupancy bounds the
hardware needed downstream.
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.events import Completion


class ReorderBuffer:
    """Releases completions strictly in tag order."""

    def __init__(self) -> None:
        self._pending: Dict[int, Completion] = {}
        self._next_tag = 0
        self.peak_occupancy = 0
        self.released: List[Completion] = []

    def __len__(self) -> int:
        return len(self._pending)

    def offer(self, completion: Completion) -> List[Completion]:
        """Add one completion; returns everything releasable in order."""
        self._pending[completion.tag] = completion
        if len(self._pending) > self.peak_occupancy:
            self.peak_occupancy = len(self._pending)
        releasable: List[Completion] = []
        while self._next_tag in self._pending:
            releasable.append(self._pending.pop(self._next_tag))
            self._next_tag += 1
        self.released.extend(releasable)
        return releasable

    @property
    def in_order(self) -> bool:
        """True when everything released so far came out in tag order."""
        return all(
            earlier.tag + 1 == later.tag
            for earlier, later in zip(self.released, self.released[1:])
        )
