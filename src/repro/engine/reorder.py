"""Reorder buffer — restores arrival order at the engine's output.

Parallel dispatch completes lookups out of order, which is why step III
tags every address with a sequence number.  The buffer holds completions
until all earlier tags have been released; its peak occupancy bounds the
hardware needed downstream.
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.events import Completion


class ReorderBuffer:
    """Releases completions strictly in tag order."""

    def __init__(self) -> None:
        self._pending: Dict[int, Completion] = {}
        self._next_tag = 0
        self.peak_occupancy = 0
        self.released: List[Completion] = []

    def __len__(self) -> int:
        return len(self._pending)

    def offer(self, completion: Completion) -> List[Completion]:
        """Add one completion; returns everything releasable in order."""
        pending = self._pending
        if completion.tag == self._next_tag and not pending:
            # In-order fast path (the steady state): the completion would
            # enter the buffer and leave it in the same call, so short-cut
            # the dict churn.  Peak occupancy still records the momentary
            # occupancy of one that the slow path would have seen.
            if self.peak_occupancy == 0:
                self.peak_occupancy = 1
            self._next_tag += 1
            self.released.append(completion)
            return [completion]
        pending[completion.tag] = completion
        if len(pending) > self.peak_occupancy:
            self.peak_occupancy = len(pending)
        releasable: List[Completion] = []
        while self._next_tag in pending:
            releasable.append(pending.pop(self._next_tag))
            self._next_tag += 1
        self.released.extend(releasable)
        return releasable

    @property
    def in_order(self) -> bool:
        """True when everything released so far came out in tag order."""
        return all(
            earlier.tag + 1 == later.tag
            for earlier, later in zip(self.released, self.released[1:])
        )
