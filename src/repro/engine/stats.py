"""Aggregated measurements of one lookup-engine run.

Everything Section V plots about the parallel engine comes from these
counters: speedup factor (Figure 16), DRed hit rate (Figures 16/17),
per-chip load shares (Figure 15, Table II), and the control-plane
interaction counts that differentiate CLUE's DRed maintenance from CLPL's.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List


@dataclass
class EngineStats:
    """Counters accumulated by :class:`repro.engine.simulator.LookupEngine`."""

    cycles: int = 0
    arrivals: int = 0
    completions: int = 0
    main_lookups: int = 0
    dred_lookups: int = 0
    dred_hits: int = 0
    dred_misses: int = 0
    diverted: int = 0
    bounced: int = 0
    stalled_arrivals: int = 0
    control_plane_interactions: int = 0
    sram_accesses: int = 0
    dred_insertions: int = 0
    per_chip_lookups: List[int] = field(default_factory=list)
    per_chip_main: List[int] = field(default_factory=list)
    per_chip_dred: List[int] = field(default_factory=list)
    latencies_sum: int = 0
    latency_max: int = 0
    # -- fault-tolerance counters (see repro.faults) -------------------
    chip_failures: int = 0
    chip_recoveries: int = 0
    chip_downtime_cycles: int = 0
    failed_over_packets: int = 0
    control_path_resolutions: int = 0
    corrupted_entries: int = 0
    shed_updates: int = 0
    deferred_updates: int = 0

    # ------------------------------------------------------------------

    @property
    def dred_hit_rate(self) -> float:
        """h — fraction of DRed lookups that hit (the paper's hit rate)."""
        total = self.dred_hits + self.dred_misses
        return self.dred_hits / total if total else 0.0

    def throughput(self) -> float:
        """Completed lookups per cycle."""
        return self.completions / self.cycles if self.cycles else 0.0

    def speedup(self, lookup_cycles: int) -> float:
        """t — throughput relative to a single chip.

        One chip completes ``1/lookup_cycles`` lookups per cycle, so the
        speedup factor is ``throughput × lookup_cycles``.
        """
        return self.throughput() * lookup_cycles

    def chip_load_shares(self) -> List[float]:
        """Fraction of all lookups each chip served (Figure 15's bars)."""
        total = sum(self.per_chip_lookups)
        if not total:
            return [0.0] * len(self.per_chip_lookups)
        return [count / total for count in self.per_chip_lookups]

    @property
    def mean_latency(self) -> float:
        """Average arrival-to-completion latency in cycles."""
        return self.latencies_sum / self.completions if self.completions else 0.0

    def availability(self) -> float:
        """Fraction of chip-cycles the chips were alive."""
        chip_cycles = self.cycles * max(1, len(self.per_chip_lookups))
        if not chip_cycles:
            return 1.0
        return 1.0 - self.chip_downtime_cycles / chip_cycles

    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Every counter as plain ints/lists (JSON- and diff-friendly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EngineStats":
        """Inverse of :meth:`as_dict` (strict: unknown keys raise).

        Serving-plane stats snapshots travel as JSON; round-tripping
        through this constructor preserves :meth:`fingerprint` exactly,
        which is what lets a client-side snapshot be compared against an
        in-process run.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown EngineStats fields: {sorted(unknown)}"
            )
        return cls(**data)  # type: ignore[arg-type]

    def fingerprint(self) -> str:
        """Digest over *every* counter, canonically serialised.

        Two runs fingerprint equal iff all counters (including the
        per-chip breakdowns and latency aggregates) are identical.  This
        is the equivalence bar between lookup backends and between the
        cycle-by-cycle and event-skipping run loops: byte-identical
        statistics, not merely matching headline numbers.
        """
        payload = json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()
