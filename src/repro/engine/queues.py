"""Bounded FIFO in front of each TCAM chip (Figure 1's per-chip queues).

The queue-full signal is the engine's only load indicator: rule (b)
diverts a packet exactly when its home queue is full, and picks the target
by comparing queue depths.  Occupancy statistics feed the load-balancing
analysis.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

T = TypeVar("T")


class BoundedFifo(Generic[T]):
    """A fixed-capacity FIFO with occupancy statistics."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.peak_occupancy = 0
        self.total_enqueued = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def push(self, item: T) -> None:
        """Enqueue; the caller must have checked :attr:`is_full`."""
        items = self._items
        depth = len(items)
        if depth >= self.capacity:
            raise OverflowError("queue is full")
        items.append(item)
        self.total_enqueued += 1
        if depth >= self.peak_occupancy:
            self.peak_occupancy = depth + 1

    def pop(self) -> T:
        """Dequeue the oldest item."""
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """The oldest item without removing it."""
        return self._items[0] if self._items else None


class UpdateQueue(Generic[T]):
    """Bounded control-plane update queue with shed/defer accounting.

    Unlike :class:`BoundedFifo` (whose full signal *diverts* packets), an
    update queue under a BGP storm must make a load-shedding decision:
    an offer to a full queue is refused and counted as *shed* — the caller
    (peer session) is expected to re-advertise later.  The ``deferred``
    counter tracks items whose expensive side effects (TCAM writes) the
    scheduler postponed; both feed the storm-mode statistics.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("update queue capacity must be positive")
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.offered = 0
        self.accepted = 0
        self.shed = 0
        self.deferred = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1] — the storm-mode trigger signal."""
        return len(self._items) / self.capacity

    def offer(self, item: T) -> bool:
        """Admit an item if there is room; False means it was shed."""
        self.offered += 1
        if self.is_full:
            self.shed += 1
            return False
        self._items.append(item)
        self.accepted += 1
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)
        return True

    def pop(self) -> T:
        """Dequeue the oldest update."""
        return self._items.popleft()

    def items(self) -> list:
        """A copy of the queued items, oldest first (snapshot capture)."""
        return list(self._items)
