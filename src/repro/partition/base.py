"""Partitioning data model.

A partitioner splits a routing table into ``n`` buckets destined for ``n``
TCAM partitions.  The paper compares three algorithms on two axes (Figure 9):
how *even* the split is, and how much *redundancy* (duplicated covering
prefixes) it needs for correctness.  Those two quantities are first-class
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.net.prefix import Prefix

Route = Tuple[Prefix, int]


@dataclass
class Partition:
    """One bucket of the split table.

    ``routes`` are the partition's own entries; ``redundant`` are covering
    prefixes duplicated into the partition so lookups that land here still
    find their (shorter) match.  Redundant entries occupy TCAM slots like
    any other — they are the overhead Figure 9 charges SLPL and CLPL with.
    """

    index: int
    routes: List[Route] = field(default_factory=list)
    redundant: List[Route] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Total TCAM slots this partition occupies."""
        return len(self.routes) + len(self.redundant)

    def all_routes(self) -> List[Route]:
        """Own + redundant entries, the actual TCAM content."""
        return self.routes + self.redundant


@dataclass
class PartitionResult:
    """The outcome of splitting one table ``n`` ways."""

    algorithm: str
    partitions: List[Partition]

    @property
    def count(self) -> int:
        return len(self.partitions)

    def sizes(self) -> List[int]:
        """Occupied slots per partition (Figure 9's y-axis)."""
        return [partition.size for partition in self.partitions]

    @property
    def max_size(self) -> int:
        return max(self.sizes()) if self.partitions else 0

    @property
    def min_size(self) -> int:
        return min(self.sizes()) if self.partitions else 0

    @property
    def total_entries(self) -> int:
        return sum(self.sizes())

    @property
    def redundancy(self) -> int:
        """Total duplicated entries across partitions."""
        return sum(len(partition.redundant) for partition in self.partitions)

    @property
    def base_entries(self) -> int:
        """Entries excluding redundancy (== the input table size)."""
        return sum(len(partition.routes) for partition in self.partitions)

    @property
    def redundancy_ratio(self) -> float:
        """Redundant entries as a fraction of the input table."""
        if self.base_entries == 0:
            return 0.0
        return self.redundancy / self.base_entries

    @property
    def imbalance(self) -> float:
        """max/mean partition size; 1.0 is a perfect split."""
        sizes = self.sizes()
        if not sizes or sum(sizes) == 0:
            return 1.0
        return max(sizes) / (sum(sizes) / len(sizes))


def validate_coverage(result: PartitionResult, routes: Sequence[Route]) -> bool:
    """Every input route appears in exactly one partition's own list."""
    seen = []
    for partition in result.partitions:
        seen.extend(partition.routes)
    return sorted(seen, key=lambda r: (r[0].sort_key(), r[1])) == sorted(
        routes, key=lambda r: (r[0].sort_key(), r[1])
    )
