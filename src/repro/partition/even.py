"""CLUE's even range partition (Section III-A).

With a disjoint table, partitioning collapses to two steps the paper spells
out verbatim: compute M/n, then walk the trie inorder handing every M/n
prefixes to the next TCAM.  Because entries are disjoint, address order is a
total order, each partition is a contiguous address *range*, no covering
prefix ever needs duplicating (zero redundancy), and sizes differ by at most
one entry.

The ranges double as the content of the Indexing Logic: home-TCAM selection
is a binary search over ``n`` boundary addresses.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.partition.base import Partition, PartitionResult, Route


class OverlapInPartitionInput(ValueError):
    """Even range partitioning requires a disjoint (ONRTC-compressed) table."""


def even_partition(routes: Sequence[Route], count: int) -> PartitionResult:
    """Split a disjoint table into ``count`` even, contiguous ranges.

    Raises :class:`OverlapInPartitionInput` if two routes overlap — feeding
    an uncompressed table in would silently produce wrong lookups, so the
    precondition is checked (linear after the sort).

    >>> routes = [(Prefix.from_bits(b), 1) for b in ("00", "01", "10", "11")]
    >>> [p.size for p in even_partition(routes, 2).partitions]
    [2, 2]
    """
    if count <= 0:
        raise ValueError("partition count must be positive")
    ordered = sorted(routes, key=lambda route: route[0].sort_key())
    for previous, current in zip(ordered, ordered[1:]):
        if previous[0].broadcast >= current[0].network:
            raise OverlapInPartitionInput(
                f"{previous[0]} overlaps {current[0]}"
            )
    partitions = [Partition(index) for index in range(count)]
    total = len(ordered)
    base, extra = divmod(total, count)
    cursor = 0
    for index in range(count):
        take = base + (1 if index < extra else 0)
        partitions[index].routes = ordered[cursor : cursor + take]
        cursor += take
    return PartitionResult(algorithm="clue-even", partitions=partitions)


def range_boundaries(result: PartitionResult) -> List[int]:
    """Start address of each non-empty partition's range.

    ``boundaries[i]`` is the lowest address belonging to partition ``i``;
    partition 0 implicitly starts at 0.  This is what the Indexing Logic
    stores (Table II's "Range Low" column).
    """
    boundaries: List[int] = []
    for partition in result.partitions:
        if partition.routes:
            boundaries.append(partition.routes[0][0].network)
        elif boundaries:
            # An empty tail partition owns an empty range at the very top.
            boundaries.append(1 << 32)
        else:
            boundaries.append(0)
    if boundaries:
        boundaries[0] = 0
    return boundaries


def partition_ranges(result: PartitionResult) -> List[Tuple[int, int]]:
    """Inclusive ``(low, high)`` address range of each partition."""
    boundaries = range_boundaries(result)
    ranges: List[Tuple[int, int]] = []
    for index, low in enumerate(boundaries):
        high = (
            boundaries[index + 1] - 1
            if index + 1 < len(boundaries)
            else (1 << 32) - 1
        )
        ranges.append((low, high))
    return ranges
