"""ID-bit partition — CoolCAMs bit-selection (Zane et al.), used by SLPL.

A handful of address bit positions are chosen as the *ID bits*; their values
index one of ``2^k`` buckets, and a lookup only powers the bucket its key's
ID bits select.  Two well-known weaknesses motivate the alternatives:

* prefixes **shorter** than the deepest ID bit leave some ID bits undefined
  and must be replicated into every bucket they might match (redundancy);
* prefix mass is not uniform over bit patterns, so buckets come out uneven
  no matter which bits are picked (Figure 9's "SCPL cannot split prefixes
  evenly").

Bits are chosen greedily to minimise the largest bucket, the standard
heuristic from the CoolCAMs paper.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.partition.base import Partition, PartitionResult, Route


def _bucket_ids(prefix: Prefix, bits: Sequence[int]) -> List[int]:
    """Every bucket ID the prefix's entry must be stored under.

    Defined bit positions contribute their value; positions beyond the
    prefix length are free and enumerate (the replication case).
    """
    ids = [0]
    for bit_position in bits:
        if bit_position < prefix.length:
            bit = prefix.bit_at(bit_position)
            ids = [(identifier << 1) | bit for identifier in ids]
        else:
            ids = [
                (identifier << 1) | value
                for identifier in ids
                for value in (0, 1)
            ]
    return ids


def _load_of(
    routes: Sequence[Route], bits: Sequence[int], buckets: int
) -> List[int]:
    """Entry count per bucket under a candidate bit selection."""
    loads = [0] * buckets
    for prefix, _ in routes:
        for identifier in _bucket_ids(prefix, bits):
            loads[identifier] += 1
    return loads


def select_id_bits(
    routes: Sequence[Route], bit_count: int, candidate_positions: int = 16
) -> List[int]:
    """Greedy choice of ``bit_count`` ID-bit positions.

    At each step the position (among the first ``candidate_positions``)
    whose addition yields the smallest maximum bucket is taken; ties break
    toward fewer replicas, then the shallower position.
    """
    chosen: List[int] = []
    for _ in range(bit_count):
        best: Tuple[int, int, int] = (1 << 62, 1 << 62, -1)
        best_position = None
        for position in range(candidate_positions):
            if position in chosen:
                continue
            candidate = chosen + [position]
            loads = _load_of(routes, candidate, 1 << len(candidate))
            score = (max(loads) if loads else 0, sum(loads), position)
            if score < best:
                best = score
                best_position = position
        if best_position is None:
            break
        chosen.append(best_position)
    return chosen


def idbit_partition(
    routes: Sequence[Route],
    count: int,
    candidate_positions: int = 16,
) -> "IdBitPartitionResult":
    """Split a table into ``count`` partitions by ID-bit bucketing.

    ``count`` buckets require ``ceil(log2(count))`` ID bits; when ``count``
    is not a power of two the ``2^k`` buckets are packed onto ``count``
    partitions largest-first.
    """
    if count <= 0:
        raise ValueError("partition count must be positive")
    bit_count = max(1, math.ceil(math.log2(count))) if count > 1 else 0
    bits = select_id_bits(routes, bit_count, candidate_positions)
    bucket_count = 1 << len(bits)

    bucket_routes: Dict[int, List[Route]] = {b: [] for b in range(bucket_count)}
    bucket_redundant: Dict[int, List[Route]] = {
        b: [] for b in range(bucket_count)
    }
    for route in routes:
        identifiers = _bucket_ids(route[0], bits)
        bucket_routes[identifiers[0]].append(route)
        for identifier in identifiers[1:]:
            bucket_redundant[identifier].append(route)

    partitions = [Partition(index) for index in range(count)]
    bucket_to_partition: Dict[int, int] = {}
    order = sorted(
        range(bucket_count),
        key=lambda b: len(bucket_routes[b]) + len(bucket_redundant[b]),
        reverse=True,
    )
    for bucket in order:
        target = min(partitions, key=lambda p: p.size)
        target.routes.extend(bucket_routes[bucket])
        target.redundant.extend(bucket_redundant[bucket])
        bucket_to_partition[bucket] = target.index

    return IdBitPartitionResult(
        algorithm="slpl-idbit",
        partitions=partitions,
        bits=bits,
        bucket_to_partition=bucket_to_partition,
    )


class IdBitPartitionResult(PartitionResult):
    """Partition result plus the ID-bit configuration (the index logic)."""

    def __init__(
        self,
        algorithm: str,
        partitions: List[Partition],
        bits: List[int],
        bucket_to_partition: Dict[int, int],
    ) -> None:
        super().__init__(algorithm=algorithm, partitions=partitions)
        self.bits = bits
        self.bucket_to_partition = bucket_to_partition

    def home_of(self, address: int) -> int:
        """Partition an address's ID bits select."""
        identifier = 0
        for bit_position in self.bits:
            identifier = (identifier << 1) | (
                (address >> (31 - bit_position)) & 1
            )
        return self.bucket_to_partition.get(identifier, 0)
