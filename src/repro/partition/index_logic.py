"""Indexing Logic — the front-end that names an address's home TCAM.

Figure 1, step II: before queueing, each destination address consults a
small on-chip structure that returns the partition (and thus chip) holding
its matching prefix.  Each partitioning algorithm implies its own structure:

* CLUE's even ranges → :class:`RangeIndex`, a binary search over at most
  ``n`` boundary addresses;
* CLPL's sub-trees  → :class:`PrefixIndex`, an LPM over the carve roots;
* SLPL's ID bits    → :class:`BitIndex`, a k-bit extract-and-map.

All are exact: the home partition *always* contains the address's matching
entry (plus duplicated covering entries where the scheme needs them).
"""

from __future__ import annotations

import abc
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.partition.base import PartitionResult
from repro.partition.even import range_boundaries
from repro.partition.idbit import IdBitPartitionResult
from repro.partition.subtree import SubtreePartitionResult
from repro.trie.trie import BinaryTrie


class IndexingLogic(abc.ABC):
    """Maps a 32-bit destination address to its home partition index."""

    @abc.abstractmethod
    def home_of(self, address: int) -> int:
        """The partition whose TCAM holds this address's matching entry."""

    @property
    @abc.abstractmethod
    def entry_count(self) -> int:
        """How many index entries the structure stores (hardware cost)."""


class RangeIndex(IndexingLogic):
    """CLUE's range table: partition i owns [boundary[i], boundary[i+1])."""

    def __init__(self, boundaries: Sequence[int]) -> None:
        if not boundaries or boundaries[0] != 0:
            raise ValueError("boundaries must start at address 0")
        if list(boundaries) != sorted(boundaries):
            raise ValueError("boundaries must be non-decreasing")
        self.boundaries = list(boundaries)

    @classmethod
    def from_partition(cls, result: PartitionResult) -> "RangeIndex":
        """Build from an even-partition result."""
        return cls(range_boundaries(result))

    def home_of(self, address: int) -> int:
        return bisect_right(self.boundaries, address) - 1

    @property
    def entry_count(self) -> int:
        return len(self.boundaries)


class PrefixIndex(IndexingLogic):
    """CLPL's carve-root map: home = partition of the longest covering root."""

    def __init__(self, assignment: Sequence[Tuple[Prefix, int]]) -> None:
        if not assignment:
            raise ValueError("assignment must name at least one carve root")
        self._trie = BinaryTrie()
        for root, partition_index in assignment:
            self._trie.insert(root, partition_index)
        if self._trie.get(Prefix.root()) is None:
            # Guarantee totality: unmatched space falls back to partition 0.
            self._trie.insert(Prefix.root(), 0)
        self._count = len(assignment)

    @classmethod
    def from_partition(cls, result: SubtreePartitionResult) -> "PrefixIndex":
        return cls(result.bucket_assignment)

    def home_of(self, address: int) -> int:
        home = self._trie.lookup(address)
        assert home is not None  # root fallback makes the map total
        return home

    @property
    def entry_count(self) -> int:
        return self._count


class BitIndex(IndexingLogic):
    """SLPL's ID-bit extractor."""

    def __init__(self, bits: Sequence[int], bucket_to_partition: Dict[int, int]):
        self.bits = list(bits)
        self.bucket_to_partition = dict(bucket_to_partition)

    @classmethod
    def from_partition(cls, result: IdBitPartitionResult) -> "BitIndex":
        return cls(result.bits, result.bucket_to_partition)

    def home_of(self, address: int) -> int:
        identifier = 0
        for bit_position in self.bits:
            identifier = (identifier << 1) | (
                (address >> (31 - bit_position)) & 1
            )
        return self.bucket_to_partition.get(identifier, 0)

    @property
    def entry_count(self) -> int:
        return len(self.bucket_to_partition)


def build_index(result: PartitionResult) -> IndexingLogic:
    """The natural indexing logic for a partition result."""
    if isinstance(result, SubtreePartitionResult):
        return PrefixIndex.from_partition(result)
    if isinstance(result, IdBitPartitionResult):
        return BitIndex.from_partition(result)
    return RangeIndex.from_partition(result)


def index_is_exact(
    index: IndexingLogic,
    result: PartitionResult,
    addresses: Sequence[int],
    reference: BinaryTrie,
) -> bool:
    """Spot-check: the home partition holds the LPM answer of each address.

    Used by integration tests; ``reference`` is the uncompressed table.
    """
    tables: List[BinaryTrie] = [
        BinaryTrie.from_routes(partition.all_routes())
        for partition in result.partitions
    ]
    for address in addresses:
        expected = reference.lookup(address)
        if expected is None:
            continue
        home = index.home_of(address)
        if tables[home].lookup(address) != expected:
            return False
    return True
