"""Sub-tree partition — CLPL's splitting algorithm (Lin et al., IPDPS 2007).

The trie is carved into buckets of bounded route count (postorder: as soon
as an accumulated subtree reaches the threshold it becomes a bucket), and
buckets are packed onto the requested number of partitions.  Correctness
demands that every routed *ancestor* of a carved subtree be duplicated into
its bucket — a lookup routed to that partition may longest-match one of
them.  Those duplicates are the redundancy Figure 9 charges CLPL with, and
they grow with the partition count.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.net.prefix import Prefix
from repro.partition.base import Partition, PartitionResult, Route
from repro.trie.node import TrieNode
from repro.trie.trie import BinaryTrie


class _Bucket:
    """One carved subtree: its own routes plus duplicated covering routes."""

    def __init__(self, root: Prefix, routes: List[Route], covering: List[Route]):
        self.root = root
        self.routes = routes
        self.covering = covering

    @property
    def size(self) -> int:
        return len(self.routes) + len(self.covering)


def subtree_partition(
    trie: BinaryTrie,
    count: int,
    granularity: int = 4,
    threshold: Optional[int] = None,
) -> PartitionResult:
    """Split ``trie`` into ``count`` partitions by sub-tree carving.

    ``granularity`` controls how many buckets are carved per partition
    (more buckets pack more evenly but duplicate more covering prefixes);
    ``threshold`` overrides the carve size directly.
    """
    if count <= 0:
        raise ValueError("partition count must be positive")
    total = len(trie)
    if threshold is None:
        threshold = max(1, math.ceil(total / max(1, count * granularity)))

    buckets: List[_Bucket] = []

    def carve(
        node: TrieNode, value: int, depth: int, ancestors: List[Route]
    ) -> List[Route]:
        """Postorder walk returning this subtree's not-yet-carved routes."""
        own: List[Route] = []
        here: Optional[Route] = None
        if node.has_route:
            here = (Prefix(value, depth), node.next_hop)
            own.append(here)
        next_ancestors = ancestors + [here] if here else ancestors
        for bit in (0, 1):
            child = node.child(bit)
            if child is not None:
                own.extend(
                    carve(child, (value << 1) | bit, depth + 1, next_ancestors)
                )
        if len(own) >= threshold and depth > 0:
            buckets.append(
                _Bucket(Prefix(value, depth), own, list(ancestors))
            )
            return []
        return own

    leftovers = carve(trie.root, 0, 0, [])
    if leftovers or not buckets:
        buckets.append(_Bucket(Prefix.root(), leftovers, []))

    partitions, assignment = _pack(buckets, count)
    return SubtreePartitionResult(
        algorithm="clpl-subtree",
        partitions=partitions,
        bucket_assignment=assignment,
    )


class SubtreePartitionResult(PartitionResult):
    """Partition result plus the carve-root → partition mapping.

    The mapping is what the scheme's Indexing Logic stores: the home
    partition of an address is the partition owning the longest carve root
    that covers it (the root bucket, carved at ``0.0.0.0/0``, is the
    fallback).
    """

    def __init__(
        self,
        algorithm: str,
        partitions: List[Partition],
        bucket_assignment: List[Tuple[Prefix, int]],
    ) -> None:
        super().__init__(algorithm=algorithm, partitions=partitions)
        self.bucket_assignment = bucket_assignment


def _pack(
    buckets: List[_Bucket], count: int
) -> Tuple[List[Partition], List[Tuple[Prefix, int]]]:
    """First-fit-decreasing packing of buckets onto partitions.

    A covering prefix is only duplicated into partitions that do not
    already hold it (as another bucket's own route or another bucket's
    duplicate) — one TCAM never stores the same entry twice.
    """
    groups: List[List[_Bucket]] = [[] for _ in range(count)]
    loads = [0] * count
    assignment: List[Tuple[Prefix, int]] = []
    for bucket in sorted(buckets, key=lambda b: b.size, reverse=True):
        target = min(range(count), key=lambda index: loads[index])
        groups[target].append(bucket)
        loads[target] += bucket.size
        assignment.append((bucket.root, target))

    partitions = []
    for index, group in enumerate(groups):
        partition = Partition(index)
        own = set()
        for bucket in group:
            partition.routes.extend(bucket.routes)
            own.update(prefix for prefix, _ in bucket.routes)
        duplicated = set()
        for bucket in group:
            for covering in bucket.covering:
                if covering[0] not in own and covering[0] not in duplicated:
                    partition.redundant.append(covering)
                    duplicated.add(covering[0])
        partitions.append(partition)
    return partitions, assignment
