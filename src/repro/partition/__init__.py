"""Table partitioning: CLUE even ranges, CLPL sub-trees, SLPL ID bits."""

from repro.partition.base import (
    Partition,
    PartitionResult,
    Route,
    validate_coverage,
)
from repro.partition.even import (
    OverlapInPartitionInput,
    even_partition,
    partition_ranges,
    range_boundaries,
)
from repro.partition.idbit import (
    IdBitPartitionResult,
    idbit_partition,
    select_id_bits,
)
from repro.partition.index_logic import (
    BitIndex,
    IndexingLogic,
    PrefixIndex,
    RangeIndex,
    build_index,
    index_is_exact,
)
from repro.partition.subtree import SubtreePartitionResult, subtree_partition

__all__ = [
    "BitIndex",
    "IdBitPartitionResult",
    "IndexingLogic",
    "OverlapInPartitionInput",
    "Partition",
    "PartitionResult",
    "PrefixIndex",
    "RangeIndex",
    "Route",
    "SubtreePartitionResult",
    "build_index",
    "even_partition",
    "idbit_partition",
    "index_is_exact",
    "partition_ranges",
    "range_boundaries",
    "select_id_bits",
    "subtree_partition",
    "validate_coverage",
]
