"""Tests for the timeline sampler."""

import itertools

import pytest

from repro.engine.schemes import CluePolicy
from repro.engine.simulator import EngineConfig, LookupEngine
from repro.engine.timeline import Timeline
from repro.net.prefix import Prefix


def toy_engine(**config_kwargs):
    config = EngineConfig(chip_count=2, **config_kwargs)
    tables = [[(Prefix.from_bits("0"), 1)], [(Prefix.from_bits("1"), 2)]]
    return LookupEngine(
        tables,
        home_of=lambda address: address >> 31,
        scheme=CluePolicy(),
        config=config,
    )


class TestTimeline:
    def test_samples_collected_at_interval(self):
        engine = toy_engine()
        timeline = Timeline(engine, interval=50)
        engine.run(itertools.cycle([0, 1 << 31]), packet_count=1_000)
        assert timeline.samples
        cycles = [sample.cycle for sample in timeline.samples]
        assert all(cycle % 50 == 0 for cycle in cycles)
        assert cycles == sorted(cycles)

    def test_completions_monotone(self):
        engine = toy_engine()
        timeline = Timeline(engine, interval=25)
        engine.run(itertools.cycle([0, 1 << 31]), packet_count=500)
        completions = [sample.completions for sample in timeline.samples]
        assert completions == sorted(completions)

    def test_throughput_series_reflects_saturation(self):
        engine = toy_engine(lookup_cycles=2, arrivals_per_cycle=1.0)
        timeline = Timeline(engine, interval=20)
        engine.run(itertools.cycle([0, 1 << 31]), packet_count=2_000)
        series = timeline.throughput_series()
        assert series
        # two chips at 2 cycles/lookup serve 1 packet/cycle at saturation
        assert 0.8 <= max(series) <= 1.01

    def test_backlog_under_overload(self):
        engine = toy_engine(queue_capacity=4)
        timeline = Timeline(engine, interval=10)
        engine.run(itertools.repeat(5), packet_count=800)  # all to chip 0
        assert timeline.peak_backlog() > 0
        assert timeline.mean_queue_depth() >= 0

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            Timeline(toy_engine(), interval=0)

    def test_queue_depth_fields(self):
        engine = toy_engine()
        timeline = Timeline(engine, interval=10)
        engine.run(itertools.cycle([0, 1 << 31]), packet_count=200)
        for sample in timeline.samples:
            assert len(sample.queue_depths) == 2
            assert 0 <= sample.busy_chips <= 2
            assert 0.0 <= sample.dred_hit_rate <= 1.0
