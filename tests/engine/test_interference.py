"""Tests for update/lookup interference and chunked engine runs."""

import itertools

import pytest

from repro.engine.schemes import CluePolicy
from repro.engine.simulator import EngineConfig, LookupEngine
from repro.net.prefix import Prefix


def toy_engine(**config_kwargs):
    config = EngineConfig(chip_count=2, **config_kwargs)
    tables = [[(Prefix.from_bits("0"), 1)], [(Prefix.from_bits("1"), 2)]]
    return LookupEngine(
        tables,
        home_of=lambda address: address >> 31,
        scheme=CluePolicy(),
        config=config,
    )


class TestChunkedRuns:
    def test_consecutive_runs_each_make_progress(self):
        """Regression: run() targets must be relative to the call."""
        engine = toy_engine()
        addresses = itertools.cycle([0, 1 << 31])
        for chunk in range(1, 5):
            engine.run(addresses, packet_count=500)
            assert engine.stats.completions == 500 * chunk

    def test_cycles_accumulate_across_runs(self):
        engine = toy_engine()
        addresses = itertools.cycle([0, 1 << 31])
        engine.run(addresses, packet_count=300)
        first = engine.stats.cycles
        engine.run(addresses, packet_count=300)
        assert engine.stats.cycles > first

    def test_cycle_budget_is_per_call(self):
        engine = toy_engine()
        addresses = itertools.cycle([0, 1 << 31])
        engine.run(addresses, packet_count=1_000)  # consumes many cycles
        # A later call with a tight budget must still succeed: the budget
        # is relative, not an absolute cycle number.
        engine.run(addresses, packet_count=10, max_cycles=5_000)


class TestInjectStall:
    def test_stall_delays_service(self):
        engine = toy_engine()
        addresses = itertools.cycle([0, 1 << 31])
        engine.run(addresses, packet_count=100)
        baseline_cycles = engine.stats.cycles
        engine.inject_stall(0, 10_000)
        engine.run(addresses, packet_count=100, max_cycles=100_000)
        # chip 0 was frozen for 10k cycles; half the traffic homes there
        # and waits (possibly diverting), so the second chunk takes longer.
        assert engine.stats.cycles - baseline_cycles > 5_000 or (
            engine.stats.diverted > 0
        )

    def test_stall_reduces_throughput_monotonically(self):
        def run_with_stalls(stall_cycles):
            engine = toy_engine(dred_capacity=4)
            addresses = itertools.cycle([0, 1 << 31])
            for _ in range(10):
                engine.run(addresses, packet_count=200)
                if stall_cycles:
                    engine.inject_stall(0, stall_cycles)
                    engine.inject_stall(1, stall_cycles)
            return engine.stats.speedup(engine.config.lookup_cycles)

        calm = run_with_stalls(0)
        stormy = run_with_stalls(400)
        assert stormy < calm

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError):
            toy_engine().inject_stall(0, -1)

    def test_current_cycle_exposed(self):
        engine = toy_engine()
        assert engine.current_cycle == 0
        engine.run(itertools.cycle([0, 1 << 31]), packet_count=50)
        assert engine.current_cycle > 0
