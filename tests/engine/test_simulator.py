"""Tests for the cycle-driven lookup engine."""

import itertools

import pytest

from repro.engine.builders import (
    build_clpl_engine,
    build_clue_engine,
    build_round_robin_engine,
    build_slpl_engine,
    map_partitions_to_chips,
    measure_partition_load,
)
from repro.engine.simulator import EngineConfig, LookupEngine
from repro.engine.schemes import CluePolicy
from repro.net.prefix import Prefix
from repro.workload.trafficgen import TrafficGenerator


def bits(pattern):
    return Prefix.from_bits(pattern)


def toy_tables():
    """Two chips, two disjoint halves of the space."""
    return [
        [(bits("0"), 1)],
        [(bits("1"), 2)],
    ]


def toy_engine(**config_kwargs):
    config = EngineConfig(chip_count=2, **config_kwargs)
    return LookupEngine(
        toy_tables(),
        home_of=lambda address: address >> 31,
        scheme=CluePolicy(),
        config=config,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(chip_count=0)
        with pytest.raises(ValueError):
            EngineConfig(lookup_cycles=0)
        with pytest.raises(ValueError):
            EngineConfig(arrivals_per_cycle=0)

    def test_table_count_must_match(self):
        with pytest.raises(ValueError):
            LookupEngine(
                [[]],
                home_of=lambda a: 0,
                scheme=CluePolicy(),
                config=EngineConfig(chip_count=2),
            )


class TestConservationAndCorrectness:
    def test_all_packets_complete(self):
        engine = toy_engine()
        addresses = itertools.cycle([0, 1 << 31])
        stats = engine.run(addresses, packet_count=500)
        assert stats.completions == 500
        assert stats.arrivals == 500

    def test_results_correct(self):
        engine = toy_engine()
        addresses = itertools.cycle([0, 1 << 31, 3 << 30])
        engine.run(addresses, packet_count=300)
        for completion in engine.reorder.released:
            expected = 1 if completion.address < (1 << 31) else 2
            assert completion.next_hop == expected

    def test_reorder_buffer_releases_everything_in_order(self):
        engine = toy_engine()
        addresses = itertools.cycle([0, 1 << 31])
        engine.run(addresses, packet_count=200)
        tags = [completion.tag for completion in engine.reorder.released]
        assert tags == list(range(200))

    def test_runaway_guard(self):
        # A scheme that can never dispatch (queue capacity immediately
        # saturated by an impossible arrival rate) must abort, not hang.
        engine = toy_engine(queue_capacity=1, arrivals_per_cycle=64.0)
        addresses = itertools.repeat(0)  # everything homes on chip 0
        with pytest.raises(RuntimeError):
            engine.run(addresses, packet_count=10_000, max_cycles=300)


class TestLoadBehaviour:
    def test_balanced_traffic_full_speedup(self):
        engine = toy_engine(lookup_cycles=2, arrivals_per_cycle=1.0)
        addresses = itertools.cycle([0, 1 << 31])
        stats = engine.run(addresses, packet_count=2_000)
        assert stats.speedup(2) > 1.9  # two chips, near-perfect balance

    def test_skewed_traffic_uses_dred(self):
        engine = toy_engine(queue_capacity=4, dred_capacity=64)
        addresses = itertools.repeat(5)  # all home on chip 0
        stats = engine.run(addresses, packet_count=1_000)
        assert stats.diverted > 0
        assert stats.dred_lookups > 0
        # once warm, diverted lookups hit (a single hot prefix)
        assert stats.dred_hit_rate > 0.9

    def test_fractional_arrival_rate(self):
        engine = toy_engine(arrivals_per_cycle=0.25)
        addresses = itertools.cycle([0, 1 << 31])
        stats = engine.run(addresses, packet_count=100)
        assert stats.cycles >= 396  # ~4 cycles per arrival


class TestStats:
    def test_chip_load_shares_sum_to_one(self):
        engine = toy_engine()
        addresses = itertools.cycle([0, 1 << 31])
        stats = engine.run(addresses, packet_count=400)
        assert sum(stats.chip_load_shares()) == pytest.approx(1.0)

    def test_latency_tracking(self):
        engine = toy_engine()
        addresses = itertools.cycle([0, 1 << 31])
        stats = engine.run(addresses, packet_count=100)
        assert stats.mean_latency >= engine.config.lookup_cycles
        assert stats.latency_max >= stats.mean_latency


class TestBuilders:
    @pytest.fixture(scope="class")
    def built_engines(self, medium_rib):
        config = EngineConfig(chip_count=4)
        training = TrafficGenerator(medium_rib, seed=1).take(5_000)
        return {
            "clue": build_clue_engine(medium_rib, config),
            "clpl": build_clpl_engine(medium_rib, config),
            "slpl": build_slpl_engine(medium_rib, training, config),
            "rr": build_round_robin_engine(medium_rib, config),
        }

    def test_clue_compresses(self, built_engines, medium_rib):
        assert built_engines["clue"].total_tcam_entries < len(medium_rib)

    def test_clpl_keeps_full_table(self, built_engines, medium_rib):
        assert built_engines["clpl"].total_tcam_entries >= len(medium_rib)

    def test_slpl_adds_static_redundancy(self, built_engines, medium_rib):
        extra = built_engines["slpl"].total_tcam_entries - len(medium_rib)
        assert 0 < extra <= int(0.25 * len(medium_rib)) + 4

    def test_round_robin_duplicates(self, built_engines, medium_rib):
        assert built_engines["rr"].total_tcam_entries == 4 * len(medium_rib)

    @pytest.mark.parametrize("name", ["clue", "clpl", "slpl", "rr"])
    def test_all_schemes_lookup_correctly(self, built_engines, medium_rib, name):
        built = built_engines[name]
        traffic = TrafficGenerator(medium_rib, seed=7)
        built.engine.run(traffic, packet_count=6_000)
        covered_only = name == "clue"  # don't-care compression
        assert built.engine.verify_completions(covered_only=covered_only)

    def test_round_robin_achieves_n(self, built_engines, medium_rib):
        stats = built_engines["rr"].engine.stats
        assert stats.speedup(4) == pytest.approx(4.0, abs=0.05)

    def test_clue_outperforms_slpl_on_bursty_traffic(self, medium_rib):
        """Dynamic redundancy beats static selection when traffic moves."""
        config = EngineConfig(chip_count=4, queue_capacity=32)
        training = TrafficGenerator(medium_rib, seed=1).take(5_000)
        clue = build_clue_engine(medium_rib, config)
        slpl = build_slpl_engine(medium_rib, training, config)
        # evaluation traffic from a different seed: the statistics shifted
        clue_stats = clue.engine.run(
            TrafficGenerator(medium_rib, seed=99), 20_000
        )
        slpl_stats = slpl.engine.run(
            TrafficGenerator(medium_rib, seed=99), 20_000
        )
        assert clue_stats.speedup(4) >= slpl_stats.speedup(4)


class TestMapping:
    def test_natural_mapping(self):
        mapping = map_partitions_to_chips(8, 4)
        assert mapping == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_adversarial_mapping_groups_hot_first(self):
        loads = [5, 100, 7, 90, 1, 80, 2, 70]
        mapping = map_partitions_to_chips(8, 4, loads)
        # the four hottest partitions (1,3,5,7) land on chips 0 and 1
        assert mapping[1] == 0 and mapping[3] == 0
        assert mapping[5] == 1 and mapping[7] == 1

    def test_divisibility_required(self):
        with pytest.raises(ValueError):
            map_partitions_to_chips(7, 4)

    def test_loads_length_checked(self):
        with pytest.raises(ValueError):
            map_partitions_to_chips(8, 4, [1, 2])

    def test_measure_partition_load(self, medium_rib):
        built = build_clue_engine(medium_rib, EngineConfig(chip_count=4))
        sample = TrafficGenerator(medium_rib, seed=3).take(2_000)
        loads = measure_partition_load(
            built.index, sample, built.partition_result.count
        )
        assert sum(loads) == 2_000
        assert len(loads) == 32
