"""Failover acceptance: chip death mid-run must not lose or corrupt packets."""

import pytest

from repro.engine.builders import build_clue_engine, build_round_robin_engine
from repro.engine.simulator import EngineConfig
from repro.faults import FaultInjector, FaultSchedule
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator


@pytest.fixture(scope="module")
def routes():
    return generate_rib(9, RibParameters(size=2_000))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"dred_capacity": 0},
            {"max_dred_attempts": 0},
            {"control_path_cycles": -1},
        ],
    )
    def test_bad_values_fail_fast(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)


class TestChipDeathMidRun:
    def test_every_packet_completes_correctly(self, routes):
        built = build_clue_engine(routes, EngineConfig(chip_count=4))
        engine = built.engine
        schedule = FaultSchedule(seed=1).chip_down(500, chip=1)
        engine.fault_injector = FaultInjector(engine, schedule)
        traffic = TrafficGenerator(routes, seed=4)
        stats = engine.run(traffic, 8_000)
        # Conservation: everything injected completed, correctly.
        assert stats.completions == stats.arrivals == 8_000
        assert engine.verify_completions()
        # The dead chip's range was actually failed over.
        assert stats.failed_over_packets > 0
        assert stats.control_path_resolutions > 0
        assert stats.chip_failures == 1
        assert stats.chip_downtime_cycles > 0
        assert stats.availability() < 1.0

    def test_dead_chip_serves_nothing(self, routes):
        built = build_clue_engine(routes, EngineConfig(chip_count=4))
        engine = built.engine
        engine.kill_chip(2)
        before = engine.stats.per_chip_lookups[2]
        engine.run(TrafficGenerator(routes, seed=5), 2_000)
        assert engine.stats.per_chip_lookups[2] == before
        assert engine.verify_completions()

    def test_recovery_restores_service(self, routes):
        built = build_clue_engine(routes, EngineConfig(chip_count=4))
        engine = built.engine
        schedule = (
            FaultSchedule(seed=2).chip_down(200, chip=0).chip_up(1_500, chip=0)
        )
        engine.fault_injector = FaultInjector(engine, schedule)
        stats = engine.run(TrafficGenerator(routes, seed=6), 6_000)
        assert engine.verify_completions()
        assert stats.chip_recoveries == 1
        # After revival the chip serves its home range again.
        served_after = stats.per_chip_lookups[0]
        assert served_after > 0

    def test_failover_warms_dred(self, routes):
        """Control-path resolutions taper off as survivors' DReds warm."""
        built = build_clue_engine(routes, EngineConfig(chip_count=4))
        engine = built.engine
        engine.kill_chip(1)
        engine.run(TrafficGenerator(routes, seed=7), 2_000)
        first = engine.stats.control_path_resolutions
        engine.run(TrafficGenerator(routes, seed=7), 2_000)
        second = engine.stats.control_path_resolutions - first
        assert second < first
        assert engine.verify_completions()

    def test_round_robin_failover(self, routes):
        """Full duplication fails over with MAIN lookups (no DRed)."""
        built = build_round_robin_engine(
            routes, EngineConfig(chip_count=4)
        )
        engine = built.engine
        engine.kill_chip(3)
        stats = engine.run(TrafficGenerator(routes, seed=8), 2_000)
        assert stats.completions == 2_000
        assert engine.verify_completions()
        assert stats.failed_over_packets > 0
