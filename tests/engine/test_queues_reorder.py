"""Tests for the bounded FIFO and the reorder buffer."""

import pytest

from repro.engine.events import Completion, LookupKind
from repro.engine.queues import BoundedFifo
from repro.engine.reorder import ReorderBuffer


class TestBoundedFifo:
    def test_fifo_order(self):
        queue = BoundedFifo(4)
        queue.push(1)
        queue.push(2)
        assert queue.pop() == 1
        assert queue.pop() == 2

    def test_capacity_enforced(self):
        queue = BoundedFifo(1)
        queue.push(1)
        assert queue.is_full
        with pytest.raises(OverflowError):
            queue.push(2)

    def test_peek(self):
        queue = BoundedFifo(2)
        assert queue.peek() is None
        queue.push(7)
        assert queue.peek() == 7
        assert len(queue) == 1

    def test_stats(self):
        queue = BoundedFifo(4)
        for item in range(3):
            queue.push(item)
        queue.pop()
        queue.push(9)
        assert queue.peak_occupancy == 3
        assert queue.total_enqueued == 4

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            BoundedFifo(0)


def completion(tag):
    return Completion(tag, 0, 1, 10, 0, LookupKind.MAIN, 5)


class TestReorderBuffer:
    def test_in_order_release(self):
        buffer = ReorderBuffer()
        assert [c.tag for c in buffer.offer(completion(0))] == [0]
        assert [c.tag for c in buffer.offer(completion(1))] == [1]

    def test_holds_out_of_order(self):
        buffer = ReorderBuffer()
        assert buffer.offer(completion(2)) == []
        assert buffer.offer(completion(1)) == []
        released = buffer.offer(completion(0))
        assert [c.tag for c in released] == [0, 1, 2]
        assert len(buffer) == 0

    def test_peak_occupancy(self):
        buffer = ReorderBuffer()
        buffer.offer(completion(3))
        buffer.offer(completion(2))
        buffer.offer(completion(1))
        assert buffer.peak_occupancy == 3

    def test_released_in_order_flag(self):
        buffer = ReorderBuffer()
        for tag in (1, 0, 3, 2):
            buffer.offer(completion(tag))
        assert buffer.in_order

    def test_latency(self):
        assert completion(0).latency == 5
