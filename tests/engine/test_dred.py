"""Tests for the DRed prefix cache."""

import pytest

from repro.engine.dred import DredCache
from repro.net.prefix import Prefix


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestBasics:
    def test_insert_and_hit(self):
        cache = DredCache(4, chip_index=0, exclude_own=False)
        cache.insert(bits("1"), 7, owner=1)
        entry = cache.lookup(1 << 31)
        assert entry is not None and entry.next_hop == 7
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = DredCache(4, 0, False)
        assert cache.lookup(0) is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_lpm_semantics(self):
        cache = DredCache(4, 0, False)
        cache.insert(bits("1"), 1, owner=1)
        cache.insert(bits("10"), 2, owner=1)
        assert cache.lookup(0b10 << 30).next_hop == 2
        assert cache.lookup(0b11 << 30).next_hop == 1

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            DredCache(0, 0, False)


class TestExclusion:
    def test_own_chip_refused(self):
        cache = DredCache(4, chip_index=2, exclude_own=True)
        assert not cache.insert(bits("1"), 7, owner=2)
        assert len(cache) == 0

    def test_foreign_accepted(self):
        cache = DredCache(4, chip_index=2, exclude_own=True)
        assert cache.insert(bits("1"), 7, owner=0)
        assert len(cache) == 1

    def test_clpl_mode_accepts_own(self):
        cache = DredCache(4, chip_index=2, exclude_own=False)
        assert cache.insert(bits("1"), 7, owner=2)


class TestLru:
    def test_eviction_order(self):
        cache = DredCache(2, 0, False)
        cache.insert(bits("00"), 1, owner=1)
        cache.insert(bits("01"), 2, owner=1)
        cache.insert(bits("10"), 3, owner=1)  # evicts 00
        assert bits("00") not in cache
        assert cache.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = DredCache(2, 0, False)
        cache.insert(bits("00"), 1, owner=1)
        cache.insert(bits("01"), 2, owner=1)
        cache.lookup(0b00 << 30)              # refresh 00
        cache.insert(bits("10"), 3, owner=1)  # evicts 01, not 00
        assert bits("00") in cache
        assert bits("01") not in cache

    def test_reinsert_refreshes_and_updates(self):
        cache = DredCache(2, 0, False)
        cache.insert(bits("00"), 1, owner=1)
        cache.insert(bits("01"), 2, owner=1)
        cache.insert(bits("00"), 9, owner=1)
        cache.insert(bits("10"), 3, owner=1)
        assert cache.lookup(0).next_hop == 9
        assert bits("01") not in cache

    def test_capacity_respected(self):
        cache = DredCache(8, 0, False)
        for value in range(30):
            cache.insert(Prefix(value, 6), 1, owner=1)
        assert len(cache) == 8


class TestMaintenance:
    def test_delete_present(self):
        cache = DredCache(4, 0, False)
        cache.insert(bits("1"), 1, owner=1)
        assert cache.delete(bits("1"))
        assert cache.lookup(1 << 31) is None

    def test_delete_absent(self):
        assert not DredCache(4, 0, False).delete(bits("1"))

    def test_delete_cleans_index(self):
        cache = DredCache(4, 0, False)
        cache.insert(bits("1"), 1, owner=1)
        cache.delete(bits("1"))
        cache.insert(bits("0"), 2, owner=1)
        assert cache.lookup(1 << 31) is None  # stale index entry would hit

    def test_invalidate_overlapping(self):
        cache = DredCache(8, 0, False)
        cache.insert(bits("10"), 1, owner=1)
        cache.insert(bits("101"), 2, owner=1)
        cache.insert(bits("0"), 3, owner=1)
        removed, _scanned = cache.invalidate_overlapping(bits("1"))
        assert removed == 2
        assert bits("0") in cache

    def test_owner_recorded(self):
        cache = DredCache(4, 0, False)
        cache.insert(bits("1"), 1, owner=3)
        assert cache.lookup(1 << 31).owner == 3


class TestExclusionUnderChurn:
    """CLUE's invariant must survive prefixes changing home chips.

    Warm DReds with traffic, churn the table so entries migrate between
    partitions, rebalance (ownership reshuffles), then run more traffic:
    no chip's DRed may ever hold a prefix that its own main partition
    answers.
    """

    def test_exclusion_survives_partition_moves(self):
        from repro.core import ClueSystem, SystemConfig
        from repro.engine.simulator import EngineConfig
        from repro.workload.ribgen import RibParameters, generate_rib
        from repro.workload.trafficgen import TrafficGenerator
        from repro.workload.updategen import UpdateGenerator, UpdateParameters

        routes = generate_rib(31, RibParameters(size=1_200))
        system = ClueSystem(
            routes,
            SystemConfig(
                engine=EngineConfig(
                    chip_count=4, queue_capacity=8, dred_capacity=128
                )
            ),
        )
        traffic = TrafficGenerator(routes, seed=32)
        # Warm the DReds, then churn the table so prefixes are added and
        # removed across partition boundaries.
        system.process_traffic(traffic, 2_000)
        assert system.check_dred_exclusion()
        assert system.engine.verify_completions()
        system.engine.reorder.released.clear()
        updates = UpdateGenerator(
            routes,
            seed=33,
            parameters=UpdateParameters(
                modify_fraction=0.2,
                new_prefix_fraction=0.5,
                withdraw_fraction=0.3,
            ),
        )
        system.apply_updates(updates.take(300))
        assert system.check_dred_exclusion()
        # Rebalance moves prefixes to new home chips — a prefix cached in
        # some DRed may suddenly be owned by that very chip, which is why
        # rebalance flushes the banks.
        report = system.rebalance()
        assert report.flushed_dred_entries >= 0
        assert system.check_dred_exclusion()
        # Refill under the new ownership and re-check.
        system.process_traffic(traffic, 2_000)
        assert system.check_dred_exclusion()
        assert system.engine.verify_completions()


def assert_index_consistent(cache):
    """The length index, probe plan and entry map must stay in lockstep."""
    indexed = {
        prefix
        for bucket in cache._by_length.values()
        for prefix in bucket.values()
    }
    assert indexed == set(cache._entries)
    assert list(cache.occupied_lengths) == sorted(cache._by_length)
    # One probe pair per occupied length, ascending shift (longest first),
    # each aliasing the live bucket object.
    assert [shift for shift, _ in cache._probe] == [
        32 - length for length in sorted(cache._by_length, reverse=True)
    ]
    for shift, bucket in cache._probe:
        assert bucket is cache._by_length[32 - shift]


class TestRefreshPath:
    """Regressions for insert()'s refresh fast path (engine hot path)."""

    def test_pure_recency_refresh_keeps_entry_object(self):
        cache = DredCache(4, 0, False)
        cache.insert(bits("10"), 2, owner=1)
        before = cache._entries[bits("10")]
        cache.insert(bits("01"), 1, owner=1)
        assert cache.insert(bits("10"), 2, owner=1)  # identical re-offer
        assert cache._entries[bits("10")] is before  # no reallocation
        assert cache.refreshes == 1 and cache.insertions == 2
        # Recency moved: "01" is now the LRU victim.
        cache.insert(bits("110"), 3, owner=1)
        cache.insert(bits("111"), 4, owner=1)
        cache.insert(bits("000"), 5, owner=1)  # capacity 4: evicts one
        assert bits("01") not in cache._entries
        assert bits("10") in cache._entries
        assert_index_consistent(cache)

    def test_hop_change_replaces_entry_and_reindexes(self):
        cache = DredCache(4, 0, False)
        cache.insert(bits("10"), 2, owner=1)
        cache.insert(bits("10"), 9, owner=1)  # hop changed
        entry = cache.lookup(0b10 << 30)
        assert entry.next_hop == 9
        assert cache.refreshes == 1
        assert_index_consistent(cache)

    def test_owner_change_replaces_entry(self):
        cache = DredCache(4, 0, False)
        cache.insert(bits("10"), 2, owner=1)
        cache.insert(bits("10"), 2, owner=3)  # replica owner flip
        assert cache._entries[bits("10")].owner == 3
        assert cache.refreshes == 1
        assert_index_consistent(cache)

    def test_refresh_never_evicts(self):
        cache = DredCache(2, 0, False)
        cache.insert(bits("0"), 1, owner=1)
        cache.insert(bits("1"), 2, owner=1)
        cache.insert(bits("0"), 7, owner=1)  # full cache, refresh only
        assert cache.evictions == 0 and len(cache) == 2


class TestOccupiedLengthIndex:
    """The probe plan must track insert/refresh/evict/delete churn."""

    def test_lengths_appear_and_disappear(self):
        cache = DredCache(8, 0, False)
        assert cache.occupied_lengths == ()
        cache.insert(bits("1"), 1, owner=1)
        cache.insert(bits("1010"), 2, owner=1)
        cache.insert(bits("10101010"), 3, owner=1)
        assert cache.occupied_lengths == (1, 4, 8)
        cache.delete(bits("1010"))
        assert cache.occupied_lengths == (1, 8)
        assert_index_consistent(cache)

    def test_eviction_updates_index(self):
        cache = DredCache(2, 0, False)
        cache.insert(bits("1"), 1, owner=1)
        cache.insert(bits("10"), 2, owner=1)
        cache.insert(bits("101"), 3, owner=1)  # evicts the /1
        assert cache.evictions == 1
        assert cache.occupied_lengths == (2, 3)
        # The evicted length no longer matches anything.
        assert cache.lookup(0b11 << 30) is None
        assert_index_consistent(cache)

    def test_index_consistent_under_random_churn(self):
        import random

        rng = random.Random(7)
        cache = DredCache(8, 0, False)
        pool = [
            Prefix(rng.randrange(1 << length), length)
            for length in (2, 4, 6, 8, 10)
            for _ in range(4)
        ]
        for step in range(400):
            prefix = rng.choice(pool)
            action = rng.random()
            if action < 0.6:
                cache.insert(prefix, rng.randint(1, 5), owner=rng.randint(1, 3))
            elif action < 0.8:
                cache.delete(prefix)
            else:
                cache.lookup(rng.randrange(1 << 32))
            assert_index_consistent(cache)
        assert cache.evictions > 0  # churn actually exercised eviction
