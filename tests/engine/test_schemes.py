"""Tests for the scheme policies' distinguishing behaviours."""

import itertools

from repro.engine.builders import build_clpl_engine, build_clue_engine
from repro.engine.simulator import EngineConfig
from repro.workload.trafficgen import TrafficGenerator


class TestCluePolicy:
    def test_dred_exclusion_invariant(self, medium_rib):
        """After any run, DRed i never holds a prefix of chip i's table."""
        built = build_clue_engine(medium_rib, EngineConfig(chip_count=4))
        built.engine.run(TrafficGenerator(medium_rib, seed=5), 10_000)
        for chip in built.engine.chips:
            own = set(chip.table.prefixes())
            assert chip.dred is not None
            cached = set(chip.dred._entries)
            assert not (own & cached)

    def test_no_control_plane_interactions(self, medium_rib):
        built = build_clue_engine(medium_rib, EngineConfig(chip_count=4))
        stats = built.engine.run(TrafficGenerator(medium_rib, seed=5), 8_000)
        assert stats.control_plane_interactions == 0
        assert stats.sram_accesses == 0

    def test_dred_insertions_happen(self, medium_rib):
        built = build_clue_engine(medium_rib, EngineConfig(chip_count=4))
        stats = built.engine.run(TrafficGenerator(medium_rib, seed=5), 8_000)
        assert stats.dred_insertions > 0


class TestClplPolicy:
    def test_control_plane_interaction_per_hit(self, medium_rib):
        built = build_clpl_engine(medium_rib, EngineConfig(chip_count=4))
        stats = built.engine.run(TrafficGenerator(medium_rib, seed=5), 8_000)
        # every successful main lookup triggers an RRC-ME round trip
        assert stats.control_plane_interactions > 0
        assert stats.sram_accesses >= stats.control_plane_interactions

    def test_own_chip_caching_allowed(self, medium_rib):
        built = build_clpl_engine(medium_rib, EngineConfig(chip_count=4))
        built.engine.run(TrafficGenerator(medium_rib, seed=5), 8_000)
        own_cached = 0
        for chip in built.engine.chips:
            assert chip.dred is not None
            for entry in chip.dred._entries.values():
                if entry.owner == chip.dred.chip_index:
                    own_cached += 1
        assert own_cached > 0  # the waste CLUE eliminates


class TestRedundancyClaim:
    def test_clue_matches_clpl_hit_rate_with_three_quarters_capacity(
        self, medium_rib
    ):
        """The paper's 3/4 claim: DRed i skipping chip i's prefixes lets
        CLUE reach (at least) CLPL's hit rate with 3/4 the DRed slots."""
        full = EngineConfig(chip_count=4, dred_capacity=256)
        reduced = EngineConfig(chip_count=4, dred_capacity=192)
        clpl = build_clpl_engine(medium_rib, full)
        clue = build_clue_engine(medium_rib, reduced)
        clpl_stats = clpl.engine.run(
            TrafficGenerator(medium_rib, seed=8), 25_000
        )
        clue_stats = clue.engine.run(
            TrafficGenerator(medium_rib, seed=8), 25_000
        )
        if clpl_stats.dred_lookups and clue_stats.dred_lookups:
            assert (
                clue_stats.dred_hit_rate
                >= clpl_stats.dred_hit_rate - 0.02
            )
