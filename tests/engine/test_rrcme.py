"""Tests for the RRC-ME minimal-expansion algorithm."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.rrcme import minimal_expansion
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestPaperExample:
    def test_figure_2(self):
        """Figure 2: address 100000 longest-matches p = 1*, but p has a
        child q with a different hop, so p itself is uncacheable; the
        minimal non-overlapped expansion along the address is p' = 100*."""
        trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("101"), 2)])
        address = 0b100000 << 26
        expansion = minimal_expansion(trie, address)
        assert expansion is not None
        assert expansion.prefix == bits("100")
        assert expansion.next_hop == 1
        assert not expansion.prefix.overlaps(bits("101"))

    def test_match_on_the_punched_branch(self):
        # An address inside q itself: q is a leaf, cacheable verbatim.
        trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("101"), 2)])
        expansion = minimal_expansion(trie, 0b101 << 29)
        assert expansion.prefix == bits("101")
        assert expansion.next_hop == 2


class TestProperties:
    def test_none_when_unmatched(self):
        trie = BinaryTrie.from_routes([(bits("1"), 1)])
        assert minimal_expansion(trie, 0) is None

    def test_leaf_match_returned_verbatim(self):
        trie = BinaryTrie.from_routes([(bits("10"), 5)])
        expansion = minimal_expansion(trie, 0b10 << 30)
        assert expansion.prefix == bits("10")
        assert expansion.sram_accesses >= 2

    def test_random_tables(self, rng):
        for _ in range(40):
            routes = random_routes(rng, 10, max_len=8)
            trie = BinaryTrie.from_routes(routes)
            for _ in range(20):
                address = rng.randrange(1 << 32)
                expansion = minimal_expansion(trie, address)
                expected = trie.lookup(address)
                if expected is None:
                    assert expansion is None
                    continue
                assert expansion.next_hop == expected
                assert expansion.prefix.contains_address(address)
                # Every address inside the expansion shares the same LPM hop
                # (spot-check corners): the cacheability guarantee.
                assert trie.lookup(expansion.prefix.network) == expected
                assert trie.lookup(expansion.prefix.broadcast) == expected

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5).flatmap(
                    lambda length: st.tuples(
                        st.integers(0, (1 << length) - 1 if length else 0),
                        st.just(length),
                    )
                ),
                st.integers(1, 3),
            ),
            max_size=8,
        ),
        st.integers(0, (1 << 32) - 1),
    )
    def test_property_no_foreign_route_inside_expansion(self, entries, address):
        routes = {Prefix(v, l): hop for (v, l), hop in entries}
        trie = BinaryTrie.from_routes(routes.items())
        expansion = minimal_expansion(trie, address)
        if expansion is None:
            return
        for prefix in routes:
            # No table prefix may live strictly inside the expansion —
            # that's precisely the overlap RRC-ME exists to avoid.
            assert not (
                expansion.prefix.contains(prefix)
                and prefix != expansion.prefix
            )
