"""Exact-value tests for EngineStats arithmetic."""

import pytest

from repro.engine.stats import EngineStats


def make_stats(**overrides):
    stats = EngineStats(
        per_chip_lookups=[10, 20, 30, 40],
        per_chip_main=[8, 15, 25, 32],
        per_chip_dred=[2, 5, 5, 8],
    )
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


class TestRates:
    def test_hit_rate(self):
        stats = make_stats(dred_hits=30, dred_misses=10)
        assert stats.dred_hit_rate == pytest.approx(0.75)

    def test_hit_rate_no_lookups(self):
        assert make_stats().dred_hit_rate == 0.0

    def test_throughput_and_speedup(self):
        stats = make_stats(completions=100, cycles=400)
        assert stats.throughput() == pytest.approx(0.25)
        assert stats.speedup(4) == pytest.approx(1.0)

    def test_zero_cycles(self):
        assert make_stats().throughput() == 0.0

    def test_mean_latency(self):
        stats = make_stats(completions=4, latencies_sum=40)
        assert stats.mean_latency == pytest.approx(10.0)

    def test_mean_latency_empty(self):
        assert make_stats().mean_latency == 0.0


class TestLoadShares:
    def test_shares_sum_to_one(self):
        shares = make_stats().chip_load_shares()
        assert sum(shares) == pytest.approx(1.0)
        assert shares == pytest.approx([0.1, 0.2, 0.3, 0.4])

    def test_shares_with_no_traffic(self):
        stats = EngineStats(per_chip_lookups=[0, 0])
        assert stats.chip_load_shares() == [0.0, 0.0]
