"""Tests for the flattened stride-table lookup backend (fastlpm)."""

import pytest

from repro.engine.fastlpm import (
    LOOKUP_BACKENDS,
    BackendMismatchError,
    FastLpmTable,
    VerifyingLpmTable,
    make_lookup_table,
)
from repro.engine.simulator import EngineConfig
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie

from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


def probe_addresses(routes, rng, extra=500):
    """Boundary addresses of every route plus a random sample."""
    addresses = []
    for prefix, _hop in routes:
        addresses.append(prefix.network)
        addresses.append(prefix.broadcast)
    addresses.extend(rng.randrange(1 << 32) for _ in range(extra))
    return addresses


class TestParity:
    def test_matches_trie_on_random_tables(self, rng):
        for _ in range(10):
            routes = random_routes(rng, 40, max_len=28, hops=9)
            trie = BinaryTrie.from_routes(routes)
            fast = FastLpmTable(routes)
            for address in probe_addresses(routes, rng):
                assert fast.lookup_prefix(address) == trie.lookup_prefix(
                    address
                ), f"divergence at {address:#010x}"
                assert fast.lookup(address) == trie.lookup(address)

    def test_matches_trie_on_real_rib(self, small_rib, small_trie, rng):
        fast = FastLpmTable(small_rib)
        for address in probe_addresses(small_rib[:200], rng, extra=2_000):
            assert fast.lookup_prefix(address) == small_trie.lookup_prefix(
                address
            )

    def test_default_route_and_empty_table(self):
        empty = FastLpmTable([])
        assert empty.lookup(0) is None
        assert empty.lookup_prefix(0xFFFFFFFF) is None
        default = FastLpmTable([(Prefix.root(), 7)])
        assert default.lookup(0) == 7
        assert default.lookup(0xFFFFFFFF) == 7

    def test_host_routes(self):
        host = Prefix(0x01020304, 32)
        table = FastLpmTable([(host, 5), (Prefix(0x01, 8), 1)])
        assert table.lookup(0x01020304) == 5
        assert table.lookup(0x01020305) == 1


class TestIncrementalUpdates:
    def test_insert_delete_parity_under_churn(self, rng):
        routes = random_routes(rng, 30, max_len=26, hops=9)
        trie = BinaryTrie.from_routes(routes)
        fast = FastLpmTable(routes)
        rebuilds_before = fast.rebuilds
        pool = [prefix for prefix, _hop in routes] + [
            Prefix(rng.randrange(1 << length), length)
            for length in (4, 12, 20, 28)
            for _ in range(5)
        ]
        for step in range(120):
            prefix = rng.choice(pool)
            if rng.random() < 0.5:
                hop = rng.randint(1, 9)
                assert fast.insert(prefix, hop) == trie.insert(prefix, hop)
            else:
                assert fast.delete(prefix) == trie.delete(prefix)
            address = prefix.network + rng.randrange(prefix.size)
            assert fast.lookup_prefix(address) == trie.lookup_prefix(address)
        # Spot-check the whole space after the churn.
        for address in probe_addresses(list(trie.routes()), rng):
            assert fast.lookup_prefix(address) == trie.lookup_prefix(address)
        # Updates repaint incrementally, never recompile; every content
        # change (and only those) triggers exactly one repaint.
        assert fast.rebuilds == rebuilds_before
        assert fast.repaints == fast.mutations > 0

    def test_mutation_counter_tracks_changes(self):
        table = FastLpmTable([(bits("0"), 1)])
        before = table.mutations
        table.insert(bits("01"), 2)
        table.insert(bits("01"), 3)  # overwrite still counts
        assert table.mutations == before + 2
        table.delete(bits("01"))
        assert table.mutations == before + 3
        table.delete(bits("01"))  # absent: no content change
        assert table.mutations == before + 3

    def test_delete_uncovers_shorter_route(self):
        table = FastLpmTable([(bits("1"), 1), (bits("101"), 2)])
        address = 0b101 << 29
        assert table.lookup(address) == 2
        table.delete(bits("101"))
        assert table.lookup(address) == 1
        table.delete(bits("1"))
        assert table.lookup(address) is None


class TestMappingInterface:
    def test_mirrors_trie_contract(self, rng):
        routes = random_routes(rng, 20, max_len=8, hops=3)
        trie = BinaryTrie.from_routes(routes)
        fast = FastLpmTable(routes)
        assert len(fast) == len(trie)
        assert dict(fast.routes()) == dict(trie.routes())
        assert fast.as_dict() == trie.as_dict()
        prefix, hop = routes[0]
        assert prefix in fast
        assert fast.get(prefix) == hop
        assert fast.get(Prefix(0x3FFFFFFF, 30)) is None

    def test_structural_queries_delegate_to_shadow_trie(self):
        fast = FastLpmTable([(bits("0"), 1), (bits("00"), 2)])
        # node_count / effective_hop live on BinaryTrie, not FastLpmTable.
        assert fast.node_count() >= 3
        assert fast.effective_hop(bits("000")) == 2
        with pytest.raises(AttributeError):
            fast._no_such_private_attribute

    def test_slot_stats(self):
        shallow = FastLpmTable([(bits("1"), 1)])
        assert shallow.slot_stats()["level2_blocks"] == 0
        deep = FastLpmTable([(Prefix(0x01020300, 30), 1)])
        stats = deep.slot_stats()
        assert stats["level2_blocks"] == 1
        assert stats["level3_blocks"] == 1


class TestFactoryAndConfig:
    def test_factory_builds_each_backend(self):
        routes = [(bits("1"), 1)]
        assert isinstance(make_lookup_table(routes, "trie"), BinaryTrie)
        assert isinstance(make_lookup_table(routes, "fast"), FastLpmTable)
        assert isinstance(
            make_lookup_table(routes, "verify"), VerifyingLpmTable
        )

    def test_factory_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown lookup backend"):
            make_lookup_table([], "warp")

    def test_engine_config_validates_backend(self):
        for backend in LOOKUP_BACKENDS:
            EngineConfig(lookup_backend=backend)
        with pytest.raises(ValueError, match="unknown lookup backend"):
            EngineConfig(lookup_backend="warp")


class TestVerifyBackend:
    def test_agreement_passes_and_counts(self, rng):
        routes = random_routes(rng, 25, max_len=24, hops=5)
        table = VerifyingLpmTable(routes)
        for address in probe_addresses(routes, rng, extra=100):
            table.lookup_prefix(address)
            table.lookup(address)
        assert table.checked > 0

    def test_divergence_raises(self):
        table = VerifyingLpmTable([(bits("1"), 1)])
        # Corrupt one side only: the next cross-checked lookup must trip.
        table.trie.insert(bits("11"), 9)
        with pytest.raises(BackendMismatchError):
            table.lookup(0b11 << 30)

    def test_mutations_keep_sides_in_step(self):
        table = VerifyingLpmTable([])
        assert table.insert(bits("0"), 1) is True
        assert table.insert(bits("0"), 2) is False
        assert table.lookup(0) == 2
        assert table.delete(bits("0")) is True
        assert table.lookup(0) is None
