"""Equivalence tests for the engine's fast paths.

Two optimisations must be invisible in the statistics:

* the event-driven cycle skip in ``_run_reference`` (quiescent cycles are
  jumped over with closed-form counter catch-up), and
* the fused ``_run_turbo`` loop used for all-``fast``-backend CLUE runs.

Each test pits an optimised run against a configuration that forces the
plain cycle-by-cycle loop (an ``on_cycle`` observer disables skipping; a
``trie`` backend or an observer disables turbo) and requires *byte
identical* stats fingerprints — every counter, not headline numbers.
"""

import pytest

from repro.engine.builders import build_clue_engine
from repro.engine.simulator import EngineConfig
from repro.faults import FaultInjector, FaultSchedule
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator

PACKETS = 3_000

#: Pinned fingerprint for the seeded workload below (rib seed 11, traffic
#: seed 17, 4 chips, 3k packets, rate 1.0).  Both backends and both run
#: loops must reproduce it exactly; a change here means the engine's
#: observable behaviour changed and needs a deliberate re-pin.
GOLDEN_FINGERPRINT = (
    "fbabe55d18741c028f03c1ce28e42a2c8f0d80c792071b599794a4c7f29a65c3"
)


@pytest.fixture(scope="module")
def routes():
    return generate_rib(11, RibParameters(size=2_000))


def fresh_engine(routes, backend="trie", rate=1.0, observer=None):
    built = build_clue_engine(
        routes,
        EngineConfig(
            chip_count=4, lookup_backend=backend, arrivals_per_cycle=rate
        ),
    )
    built.engine.on_cycle = observer
    return built.engine


def run_stats(routes, packets=PACKETS, traffic_seed=17, **kwargs):
    engine = fresh_engine(routes, **kwargs)
    stats = engine.run(TrafficGenerator(routes, seed=traffic_seed), packets)
    assert engine.verify_completions()
    return engine, stats


class TestCycleSkip:
    """Skipping quiescent cycles must not change any counter."""

    @pytest.mark.parametrize("rate", [1.0, 0.3, 0.25])
    def test_skip_matches_observed_run(self, routes, rate):
        # An attached observer forces the cycle-by-cycle loop; fractional
        # rates interleave quiescent cycles between arrivals so the
        # unobserved run actually exercises the skip (and its fractional
        # credit replay).
        seen = []
        _, observed = run_stats(
            routes, rate=rate, observer=seen.append, packets=1_000
        )
        _, skipped = run_stats(routes, rate=rate, packets=1_000)
        assert skipped.fingerprint() == observed.fingerprint()
        # The observer saw every cycle exactly once, in order.
        assert seen == list(range(observed.cycles))

    def test_skip_matches_under_faults(self, routes):
        # Stalls and a chip death/revival create long quiescent stretches;
        # the skip must consult the schedule's next_cycle and land faults
        # on exactly the right cycle.
        def faulted(observer):
            engine = fresh_engine(routes, rate=0.25, observer=observer)
            schedule = (
                FaultSchedule(seed=3)
                .stall(cycle=300, chip=1, cycles=200)
                .chip_down(2_000, chip=2)
                .chip_up(4_000, chip=2)
            )
            engine.fault_injector = FaultInjector(engine, schedule)
            stats = engine.run(
                TrafficGenerator(routes, seed=19), 1_500
            )
            assert engine.verify_completions()
            return stats

        observed = faulted(lambda cycle: None)
        skipped = faulted(None)
        assert skipped.chip_failures == 1
        assert skipped.chip_recoveries == 1
        assert skipped.fingerprint() == observed.fingerprint()

    def test_opaque_fault_source_disables_skip(self, routes):
        # A fault injector that does not expose ``next_cycle`` makes the
        # next fault unpredictable, so the engine must fall back to
        # visiting every cycle — and still agree with the observed run.
        class OpaqueInjector:
            def tick(self, cycle):
                return 0

        engine = fresh_engine(routes, rate=0.5)
        engine.fault_injector = OpaqueInjector()
        stats = engine.run(TrafficGenerator(routes, seed=23), 800)
        _, observed = run_stats(
            routes, rate=0.5, traffic_seed=23, packets=800,
            observer=lambda cycle: None,
        )
        # Only the fault-injector attachment differs, and it never fires.
        assert stats.fingerprint() == observed.fingerprint()

    def test_cycle_budget_still_enforced(self, routes):
        engine = fresh_engine(routes, rate=0.1)
        with pytest.raises(RuntimeError, match="cycle budget"):
            engine.run(TrafficGenerator(routes, seed=29), 500, max_cycles=50)


class TestTurboParity:
    """The fused fast-backend loop must match the reference loop exactly."""

    def test_backends_fingerprint_identical(self, routes):
        _, trie_stats = run_stats(routes, backend="trie")
        _, fast_stats = run_stats(routes, backend="fast")
        assert fast_stats.fingerprint() == trie_stats.fingerprint()

    def test_turbo_matches_forced_reference(self, routes):
        # Same fast backend, but an observer forces _run_reference — this
        # isolates the run-loop difference from the backend difference.
        _, turbo = run_stats(routes, backend="fast")
        _, reference = run_stats(
            routes, backend="fast", observer=lambda cycle: None
        )
        assert turbo.fingerprint() == reference.fingerprint()

    def test_verify_backend_agrees(self, routes):
        # The cross-checking backend runs the reference loop with both
        # tables consulted per lookup; any drift raises, and the stats
        # must still land on the same fingerprint.
        _, trie_stats = run_stats(routes, packets=600)
        _, verify_stats = run_stats(routes, backend="verify", packets=600)
        assert verify_stats.fingerprint() == trie_stats.fingerprint()

    def test_fractional_rate_parity(self, routes):
        _, trie_stats = run_stats(routes, backend="trie", rate=0.3)
        _, fast_stats = run_stats(routes, backend="fast", rate=0.3)
        assert fast_stats.fingerprint() == trie_stats.fingerprint()

    def test_parity_survives_updates_between_runs(self, routes):
        # Mid-sequence table updates invalidate the disjointness token
        # (mutations counter moves), so the turbo loop must drop to its
        # probe-plan DRed scan — and still match the trie run doing the
        # same updates.
        extra = routes[100][0], 9  # hop change on a live route

        def churned(backend):
            engine = fresh_engine(routes, backend=backend)
            traffic = TrafficGenerator(routes, seed=31)
            engine.run(traffic, 1_000)
            for chip in engine.chips:
                if extra[0] in chip.table:
                    chip.table.insert(*extra)
            stats = engine.run(traffic, 1_000)
            assert engine.verify_completions(covered_only=True)
            return stats

        assert churned("fast").fingerprint() == churned("trie").fingerprint()

    def test_dead_chip_forces_reference_and_matches(self, routes):
        # A dead chip fails the turbo gate; the fast backend must take the
        # reference loop and agree with the trie backend's identical run.
        def killed(backend):
            engine = fresh_engine(routes, backend=backend)
            engine.kill_chip(1)
            stats = engine.run(TrafficGenerator(routes, seed=37), 1_000)
            assert engine.verify_completions()
            return stats

        assert killed("fast").fingerprint() == killed("trie").fingerprint()


class TestDeterminismPin:
    """Golden fingerprint: the engine's observable behaviour is pinned."""

    @pytest.mark.parametrize("backend", ["trie", "fast"])
    def test_golden_fingerprint(self, routes, backend):
        _, stats = run_stats(routes, backend=backend)
        assert stats.fingerprint() == GOLDEN_FINGERPRINT
