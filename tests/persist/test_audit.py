"""Invariant auditor: each check detects its own class of damage."""

import pytest

from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.net.prefix import Prefix
from repro.persist.audit import (
    AUDIT_CHECKS,
    InvariantAuditor,
    InvariantViolationError,
)
from repro.workload.ribgen import RibParameters, generate_rib


@pytest.fixture()
def system():
    return ClueSystem(
        generate_rib(5, RibParameters(size=150)),
        SystemConfig(engine=EngineConfig(chip_count=2)),
    )


def first_entry_of(chip):
    return next(iter(chip.table.routes()))


class TestCleanSystem:
    def test_full_pass_ok(self, system):
        report = InvariantAuditor(system).run()
        assert report.ok
        assert sorted(report.checks_run) == sorted(AUDIT_CHECKS)
        assert report.addresses_sampled == 256
        assert report.entries_checked > 0

    def test_step_rotation_covers_every_check(self, system):
        auditor = InvariantAuditor(system)
        seen = []
        for _ in range(len(AUDIT_CHECKS)):
            seen.extend(auditor.step().checks_run)
        assert sorted(seen) == sorted(AUDIT_CHECKS)

    def test_system_facade_counts_runs(self, system):
        report = system.audit_invariants(sample_size=64)
        assert report.ok
        assert system.recovery_stats.audit_runs == 1
        system.invariant_step()
        assert system.recovery_stats.audit_runs == 2
        assert system.recovery_stats.audit_violations == 0


class TestDetection:
    def test_overlap_breaks_disjointness(self, system):
        table = system.pipeline.trie_stage.table.table
        table[Prefix(0, 0)] = 9  # covers everything
        report = InvariantAuditor(system).run()
        assert any(v.check == "disjoint" for v in report.violations)

    def test_wrong_hops_break_equivalence(self, system):
        table = system.pipeline.trie_stage.table.table
        for prefix in list(table):
            table[prefix] += 1  # still disjoint, every answer wrong
        report = InvariantAuditor(system).run()
        assert any(v.check == "equivalence" for v in report.violations)

    def test_chip_drift_breaks_partition(self, system):
        chip = system.engine.chips[0]
        prefix, hop = first_entry_of(chip)
        chip.table.insert(prefix, hop + 1)  # simulated slot corruption
        report = InvariantAuditor(system).run()
        assert any(v.check == "partition" for v in report.violations)
        # Detection must not mutate: the drift is still there.
        assert chip.table.get(prefix) == hop + 1

    def test_unevenness_breaks_partition(self, system):
        sizes = [len(chip.table) for chip in system.engine.chips]
        assert max(sizes) > sum(sizes) / len(sizes)  # any natural skew
        report = InvariantAuditor(system, evenness_tolerance=1.0).run()
        assert any(
            v.check == "partition" and "spread" in v.detail
            for v in report.violations
        )

    def test_own_prefix_in_dred_breaks_exclusion(self, system):
        chip = system.engine.chips[1]
        prefix, hop = first_entry_of(chip)
        # A prefix the chip itself serves must never sit in its DRed.
        chip.dred.insert(prefix, hop, owner=0)
        report = InvariantAuditor(system).run()
        assert any(v.check == "dred-exclusion" for v in report.violations)

    def test_halt_raises(self, system):
        system.pipeline.trie_stage.table.table[Prefix(0, 0)] = 9
        with pytest.raises(InvariantViolationError, match="disjoint"):
            InvariantAuditor(system).run(halt=True)
        with pytest.raises(InvariantViolationError):
            system.audit_invariants(halt=True)
        assert system.recovery_stats.audit_violations > 0


class TestIncrementalForm:
    def test_partition_step_audits_one_chip(self, system):
        auditor = InvariantAuditor(system)
        # Rotate to the partition check (index 2 in AUDIT_CHECKS).
        auditor.step()
        auditor.step()
        report = auditor.step()
        assert report.checks_run == ["partition"]
        # One chip's entries, not all chips'.
        total = sum(len(c.table) for c in system.engine.chips)
        assert 0 < report.entries_checked < total

    def test_budget_bounds_sampling(self, system):
        auditor = InvariantAuditor(system)
        auditor.step()  # disjoint
        report = auditor.step(budget=16)  # equivalence
        assert report.addresses_sampled <= 16

    def test_bad_parameters(self, system):
        with pytest.raises(ValueError):
            InvariantAuditor(system, sample_size=0)
        with pytest.raises(ValueError):
            InvariantAuditor(system, evenness_tolerance=0.5)
        with pytest.raises(ValueError):
            InvariantAuditor(system).step(budget=0)
