"""Regenerate the golden journal+snapshot corpus.

Run from the repository root after an *intentional* on-disk format
change::

    PYTHONPATH=src python tests/persist/golden/regenerate.py

Each fixture is a complete persistence state directory (journal segments
plus snapshots) produced by a fully seeded run — generators use seeded
RNG clocks, so regeneration is deterministic.  ``expected.json`` pins
what the committed bytes must keep producing:

* ``fingerprint`` — the restored system's state fingerprint;
* ``state_sha256`` — digest of the restored state's canonical snapshot
  encoding (catches codec drift that fingerprints might forgive);
* ``journal_records`` / ``snapshots`` — the corpus shape, so a partial
  checkout or overeager cleanup fails loudly.

The regression test never runs this file; it only reads the committed
corpus.  If the test fails after a deliberate format change, rerun this
script and commit the new corpus *together with* the code change.
"""

import json
import shutil
import sys
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import ClueSystem
from repro.engine.simulator import EngineConfig
from repro.persist.manager import PersistenceManager
from repro.persist.snapshot import dumps_state, state_digest
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.updategen import UpdateGenerator, UpdateParameters

GOLDEN_ROOT = Path(__file__).resolve().parent

CONFIG = SystemConfig(
    engine=EngineConfig(chip_count=2, dred_capacity=64, queue_capacity=64),
    update_queue_capacity=256,
)


def _build(name, seed, updates, checkpoint_every, parameters=None):
    state_dir = GOLDEN_ROOT / name / "state"
    if state_dir.parent.exists():
        shutil.rmtree(state_dir.parent)
    routes = generate_rib(seed, RibParameters(size=120))
    system = ClueSystem(routes, CONFIG)
    manager = PersistenceManager(
        system,
        state_dir,
        checkpoint_every=checkpoint_every,
        sync_interval=4,
        segment_records=32,
    )
    stream = UpdateGenerator(
        routes, seed=seed + 1, parameters=parameters
    ).take(updates)
    for message in stream:
        if manager.offer_update(message):
            manager.pump_updates(2)
    manager.drain_updates()
    fingerprint = system.state_fingerprint()
    state = system.capture_state()
    manager.sync()
    manager.close()
    audit = None
    restored, _report = PersistenceManager.restore(state_dir, config=CONFIG)
    try:
        assert restored.system.state_fingerprint() == fingerprint
        audit = restored.verify_storage()
        assert audit.ok, audit.problems
    finally:
        restored.close()
    expected = {
        "fingerprint": fingerprint,
        "state_sha256": state_digest(state),
        "state_bytes": len(dumps_state(state)),
        "journal_records": audit.journal_records,
        "snapshots": audit.valid_snapshots,
    }
    (GOLDEN_ROOT / name / "expected.json").write_text(
        json.dumps(expected, indent=2, sort_keys=True) + "\n",
        encoding="ascii",
    )
    print(f"{name}: {audit.summary()}  fingerprint={fingerprint[:16]}…")


def main():
    # Announce-heavy churn, one final checkpoint: restore = snapshot only.
    _build("announce-only", seed=31, updates=48, checkpoint_every=48)
    # Frequent checkpoints: several snapshots plus a journal tail, so
    # restore picks the newest snapshot and replays the remainder.
    _build("churn-checkpoint", seed=32, updates=60, checkpoint_every=16)
    # Flap-heavy stream (announce/withdraw of the same hot prefixes) and
    # no checkpoint cadence: restore replays the whole journal from the
    # bootstrap snapshot.
    _build(
        "flap-replay",
        seed=33,
        updates=40,
        checkpoint_every=0,
        parameters=UpdateParameters(flap_concentration=0.9),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
