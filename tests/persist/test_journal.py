"""Write-ahead journal: framing, recovery, rotation, crash semantics."""

import struct

import pytest

from repro.persist.journal import (
    Journal,
    JournalError,
    JournalRecord,
    SEGMENT_PREFIX,
)


def segments(tmp_path):
    return sorted(tmp_path.glob(f"{SEGMENT_PREFIX}*"))


class TestAppendRead:
    def test_round_trip(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("apply", "announce 10.0.0.0/8 3 0.5")
        journal.append("drain")
        journal.close()

        records = list(Journal(tmp_path).records())
        assert [r.seq for r in records] == [1, 2]
        assert records[0].kind == "apply"
        assert records[0].payload == "announce 10.0.0.0/8 3 0.5"
        assert records[1].kind == "drain"
        assert records[1].payload == ""

    def test_sequence_resumes_after_reopen(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("a")
        journal.close()
        journal = Journal(tmp_path)
        record = journal.append("b")
        assert record.seq == 2
        journal.close()

    def test_records_after_seq(self, tmp_path):
        journal = Journal(tmp_path)
        for _ in range(5):
            journal.append("op")
        assert [r.seq for r in journal.records(after_seq=3)] == [4, 5]
        journal.close()

    def test_non_ascii_payload_rejected(self, tmp_path):
        journal = Journal(tmp_path)
        with pytest.raises(UnicodeEncodeError):
            journal.append("op", "café")
        journal.close()


class TestRotation:
    def test_segments_rotate(self, tmp_path):
        journal = Journal(tmp_path, segment_records=3)
        for _ in range(8):
            journal.append("op")
        journal.close()
        assert len(segments(tmp_path)) == 3
        assert [r.seq for r in Journal(tmp_path).records()] == list(
            range(1, 9)
        )

    def test_truncate_through_keeps_needed_suffix(self, tmp_path):
        journal = Journal(tmp_path, segment_records=3)
        for _ in range(10):
            journal.append("op")
        # seq 1..3 | 4..6 | 7..9 | 10 (open)
        assert journal.truncate_through(6) == 2
        assert journal.first_seq() == 7
        # Open segment is never deleted, even if fully covered.
        assert journal.truncate_through(100) == 1
        assert journal.first_seq() == 10
        journal.close()


class TestRecovery:
    def test_torn_tail_truncated(self, tmp_path):
        journal = Journal(tmp_path)
        for _ in range(4):
            journal.append("op")
        journal.close()
        path = segments(tmp_path)[-1]
        with open(path, "ab") as handle:
            handle.write(struct.pack(">II", 40, 0xDEAD) + b"hal")  # torn

        recovered = Journal(tmp_path)
        assert recovered.last_seq == 4
        assert len(recovered) == 4
        recovered.close()

    def test_crc_mismatch_truncates_rest(self, tmp_path):
        journal = Journal(tmp_path)
        for _ in range(4):
            journal.append("op")
        journal.close()
        path = segments(tmp_path)[-1]
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the final record
        path.write_bytes(bytes(data))

        recovered = Journal(tmp_path)
        assert recovered.last_seq == 3
        recovered.close()

    def test_corrupt_non_final_segment_raises(self, tmp_path):
        journal = Journal(tmp_path, segment_records=2)
        for _ in range(6):
            journal.append("op")
        journal.close()
        first = segments(tmp_path)[0]
        data = bytearray(first.read_bytes())
        data[-1] ^= 0xFF
        first.write_bytes(bytes(data))
        with pytest.raises(JournalError, match="non-final segment"):
            Journal(tmp_path)

    def test_sequence_gap_raises(self, tmp_path):
        journal = Journal(tmp_path, segment_records=2)
        for _ in range(6):
            journal.append("op")
        journal.close()
        segments(tmp_path)[1].unlink()  # drop seq 3..4
        with pytest.raises(JournalError, match="sequence gap"):
            Journal(tmp_path)


class TestDurability:
    def test_fsync_batching(self, tmp_path):
        journal = Journal(tmp_path, sync_interval=4)
        for _ in range(10):
            journal.append("op")
        assert journal.sync_count == 2
        assert journal.durable_seq == 8
        journal.sync()
        assert journal.durable_seq == 10
        journal.close()

    def test_process_crash_loses_nothing(self, tmp_path):
        journal = Journal(tmp_path, sync_interval=64)
        for _ in range(10):
            journal.append("op")
        journal.crash(power_loss=False)
        assert Journal(tmp_path).last_seq == 10

    def test_power_loss_loses_unsynced_tail_only(self, tmp_path):
        journal = Journal(tmp_path, sync_interval=4)
        for _ in range(10):
            journal.append("op")
        journal.crash(power_loss=True)
        assert Journal(tmp_path).last_seq == 8  # last sync at seq 8

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = Journal(tmp_path)
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append("op")


class TestRecordCodec:
    def test_encode_decode(self):
        record = JournalRecord(7, "apply", "announce 10.0.0.0/8 3 0.25")
        assert JournalRecord.decode(record.encode()) == record

    def test_payloadless(self):
        record = JournalRecord(1, "drain")
        assert JournalRecord.decode(record.encode()) == record

    def test_garbage_raises(self):
        with pytest.raises(JournalError):
            JournalRecord.decode(b"\xff\xfe not text")
        with pytest.raises(JournalError):
            JournalRecord.decode(b"12")  # seq but no kind
