"""PersistenceManager: journal-before-apply, checkpoints, restore."""

import pytest

from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.persist import PersistenceManager
from repro.persist.journal import Journal, JournalError
from repro.persist.snapshot import SnapshotError
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.updategen import UpdateGenerator

ROUTES = generate_rib(9, RibParameters(size=250))
TRACE = UpdateGenerator(list(ROUTES), seed=9).take(200)


def make_system(queue_capacity=256):
    return ClueSystem(
        ROUTES,
        SystemConfig(
            engine=EngineConfig(chip_count=2),
            update_queue_capacity=queue_capacity,
        ),
    )


def drive(target, trace, pump_every=3):
    for index, message in enumerate(trace):
        target.offer_update(message)
        if index % pump_every == 0:
            target.pump_updates(4)
    target.drain_updates()


class TestJournalBeforeApply:
    def test_operations_are_journaled(self, tmp_path):
        manager = PersistenceManager(make_system(), tmp_path)
        manager.apply_update(TRACE[0])
        manager.offer_update(TRACE[1])
        manager.pump_updates(2)
        manager.drain_updates()
        manager.close()
        kinds = [r.kind for r in Journal(tmp_path / "journal").records()]
        assert kinds[:5] == ["checkpoint", "apply", "offer", "pump", "drain"]

    def test_recovery_stats_track_journal(self, tmp_path):
        system = make_system()
        manager = PersistenceManager(system, tmp_path, sync_interval=2)
        for message in TRACE[:6]:
            manager.apply_update(message)
        assert system.recovery_stats.journal_records >= 6
        assert system.recovery_stats.journal_syncs >= 3
        assert system.recovery_stats.snapshots_written == 1  # initial
        manager.close()

    def test_fresh_directory_guard(self, tmp_path):
        manager = PersistenceManager(make_system(), tmp_path)
        manager.close()
        with pytest.raises(ValueError, match="already exists"):
            PersistenceManager(make_system(), tmp_path)

    def test_lazy_compression_rejected(self, tmp_path):
        system = ClueSystem(ROUTES, SystemConfig(lazy_compression=True))
        with pytest.raises(ValueError, match="lazy"):
            PersistenceManager(system, tmp_path)


class TestCheckpointing:
    def test_checkpoint_every_n_operations(self, tmp_path):
        system = make_system()
        manager = PersistenceManager(system, tmp_path, checkpoint_every=10)
        for message in TRACE[:25]:
            manager.apply_update(message)
        # initial + two automatic (at ops 10 and 20)
        assert system.recovery_stats.snapshots_written == 3
        manager.close()

    def test_checkpoint_truncates_obsolete_segments(self, tmp_path):
        system = make_system()
        manager = PersistenceManager(
            system, tmp_path, segment_records=8, keep_snapshots=1
        )
        for message in TRACE[:40]:
            manager.apply_update(message)
        manager.checkpoint()
        journal = manager.journal
        assert journal.first_seq() > 1
        # Everything after the retained snapshot is still replayable.
        assert journal.first_seq() <= manager.snapshots.oldest_seq() + 1
        manager.close()


class TestRestore:
    def test_round_trip_fingerprint(self, tmp_path):
        system = make_system()
        manager = PersistenceManager(system, tmp_path, checkpoint_every=50)
        drive(manager, TRACE)
        fingerprint = system.state_fingerprint()
        manager.crash()

        restored, report = PersistenceManager.restore(tmp_path)
        assert restored.system.state_fingerprint() == fingerprint
        assert report.audit is not None and report.audit.ok
        assert report.time_to_recovered_us > 0
        stats = restored.system.recovery_stats
        assert stats.restores == 1
        assert stats.replayed_updates == report.replayed_records
        restored.close()

    def test_restore_continues_journal(self, tmp_path):
        manager = PersistenceManager(make_system(), tmp_path)
        drive(manager, TRACE[:50])
        manager.crash()
        restored, _report = PersistenceManager.restore(tmp_path)
        drive(restored, TRACE[50:100])
        fingerprint = restored.system.state_fingerprint()
        restored.crash()
        # A second restore sees one continuous history.
        final, report = PersistenceManager.restore(tmp_path)
        assert final.system.state_fingerprint() == fingerprint
        final.close()

    def test_falls_back_to_previous_snapshot(self, tmp_path):
        system = make_system()
        manager = PersistenceManager(
            system, tmp_path, checkpoint_every=40, keep_snapshots=2
        )
        drive(manager, TRACE)
        fingerprint = system.state_fingerprint()
        manager.crash()
        newest = sorted((tmp_path / "snapshots").glob("*.ckpt"))[-1]
        data = bytearray(newest.read_bytes())
        data[-10] ^= 0xFF
        newest.write_bytes(bytes(data))

        restored, report = PersistenceManager.restore(tmp_path)
        assert restored.system.state_fingerprint() == fingerprint
        assert len(report.skipped_snapshots) == 1
        assert newest.name in report.skipped_snapshots[0]
        restored.close()

    def test_no_usable_snapshot_raises(self, tmp_path):
        manager = PersistenceManager(make_system(), tmp_path)
        manager.close()
        for path in (tmp_path / "snapshots").glob("*.ckpt"):
            path.write_bytes(b"garbage")
        with pytest.raises(SnapshotError, match="no usable snapshot"):
            PersistenceManager.restore(tmp_path)

    def test_replay_divergence_detected(self, tmp_path):
        manager = PersistenceManager(make_system(), tmp_path)
        drive(manager, TRACE[:30])
        manager.crash()
        # Forge a flush marker the replayed operations cannot reproduce.
        journal = Journal(tmp_path / "journal")
        journal.append("flush-auto", "5")
        journal.close()
        with pytest.raises(JournalError, match="diverged"):
            PersistenceManager.restore(tmp_path)

    def test_unknown_record_kind_raises(self, tmp_path):
        manager = PersistenceManager(make_system(), tmp_path)
        manager.apply_update(TRACE[0])
        manager.crash()
        journal = Journal(tmp_path / "journal")
        journal.append("frobnicate", "1")
        journal.close()
        with pytest.raises(JournalError, match="unknown kind"):
            PersistenceManager.restore(tmp_path)


class TestStormCrash:
    def test_mid_storm_crash_recovers_exactly(self, tmp_path):
        # A tiny queue forces storm mode (deferred TCAM writes), so the
        # snapshot/journal must capture the mirror's staleness exactly.
        trace = UpdateGenerator(list(ROUTES), seed=31).take(300)

        def run(target, start=0):
            for index in range(start, len(trace)):
                target.offer_update(trace[index])
                if index % 7 == 0:
                    target.pump_updates(2)
            target.drain_updates()

        reference = make_system(queue_capacity=16)
        run(reference)
        assert reference.scheduler.stats.deferred > 0  # storms happened

        system = make_system(queue_capacity=16)
        manager = PersistenceManager(system, tmp_path, checkpoint_every=35)
        for index in range(150):
            manager.offer_update(trace[index])
            if index % 7 == 0:
                manager.pump_updates(2)
        assert system.scheduler.storm_mode or system.scheduler.stats.deferred
        manager.crash(power_loss=True)

        restored, report = PersistenceManager.restore(tmp_path)
        run(restored, start=restored.system.scheduler.stats.offered)
        assert (
            restored.system.state_fingerprint()
            == reference.state_fingerprint()
        )
        assert restored.system.pipeline.tcam_matches_table()
        restored.close()
