"""Golden-corpus regression: committed state dirs must restore forever.

Three journal+snapshot fixtures live under ``tests/persist/golden/``,
each with a pinned state fingerprint and canonical-encoding digest (see
``regenerate.py`` there).  Any change to the journal codec, snapshot
format, replay semantics, or fingerprint definition that silently alters
what old on-disk state restores to fails here — byte for byte, not just
"it loaded".

A failure means one of two things: an accidental format break (fix the
code), or a deliberate format change (rerun ``regenerate.py`` and commit
the new corpus with the change, noting it in DESIGN.md).
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.core.config import SystemConfig
from repro.engine.simulator import EngineConfig
from repro.persist.manager import PersistenceManager
from repro.persist.snapshot import dumps_state, state_digest

GOLDEN_ROOT = Path(__file__).resolve().parent / "golden"
FIXTURES = ("announce-only", "churn-checkpoint", "flap-replay")

# Must match regenerate.py: restore rebuilds with an explicit config.
CONFIG = SystemConfig(
    engine=EngineConfig(chip_count=2, dred_capacity=64, queue_capacity=64),
    update_queue_capacity=256,
)


def _expected(name):
    return json.loads(
        (GOLDEN_ROOT / name / "expected.json").read_text(encoding="ascii")
    )


@pytest.fixture(params=FIXTURES)
def fixture(request, tmp_path):
    """One corpus entry, copied aside so restore can never mutate it."""
    name = request.param
    source = GOLDEN_ROOT / name / "state"
    work = tmp_path / name
    shutil.copytree(source, work)
    return name, work


def test_corpus_is_committed():
    for name in FIXTURES:
        state = GOLDEN_ROOT / name / "state"
        assert (state / "journal").is_dir(), f"{name}: journal missing"
        assert (state / "snapshots").is_dir(), f"{name}: snapshots missing"
        assert (GOLDEN_ROOT / name / "expected.json").is_file()


def test_restore_reproduces_pinned_state(fixture):
    name, work = fixture
    expected = _expected(name)
    manager, report = PersistenceManager.restore(work, config=CONFIG)
    try:
        fingerprint = manager.system.state_fingerprint()
        state = manager.system.capture_state()
    finally:
        manager.close()
    assert fingerprint == expected["fingerprint"], (
        f"{name}: restored fingerprint drifted — the on-disk format or "
        f"replay semantics changed"
    )
    assert state_digest(state) == expected["state_sha256"], (
        f"{name}: canonical state encoding drifted byte-for-byte"
    )
    assert len(dumps_state(state)) == expected["state_bytes"]
    assert report.replayed_records >= 0


def test_storage_audit_accepts_the_corpus(fixture):
    name, work = fixture
    expected = _expected(name)
    manager, _report = PersistenceManager.restore(work, config=CONFIG)
    try:
        audit = manager.verify_storage()
    finally:
        manager.close()
    assert audit.ok, f"{name}: {audit.problems}"
    assert audit.journal_records == expected["journal_records"]
    assert audit.valid_snapshots == expected["snapshots"]


def test_corrupting_a_snapshot_byte_is_detected(fixture, tmp_path):
    name, work = fixture
    snapshots = sorted((work / "snapshots").iterdir())
    target = snapshots[-1]
    blob = bytearray(target.read_bytes())
    blob[-1] ^= 0x01
    target.write_bytes(bytes(blob))
    try:
        manager, _report = PersistenceManager.restore(work, config=CONFIG)
    except ValueError as exc:
        # Single-snapshot corpus: restore itself must refuse the flip.
        assert "digest mismatch" in str(exc)
        return
    # Multi-snapshot corpus: restore falls back to the predecessor, and
    # the storage audit must still name the damaged file.
    try:
        audit = manager.verify_storage()
    finally:
        manager.close()
    assert audit.corrupt_snapshots, (
        f"{name}: flipped snapshot byte went unnoticed"
    )
