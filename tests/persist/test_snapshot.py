"""Snapshot format: digests, versioning, retention, fallback."""

import pytest

from repro.persist.snapshot import (
    SnapshotError,
    SnapshotStore,
    load_snapshot,
    save_snapshot,
    state_digest,
)

STATE = {"table": [["10.0.0.0/8", 3]], "boundaries": [0, 1 << 31]}


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_snapshot(path, STATE, seq=42)
        seq, state = load_snapshot(path)
        assert seq == 42
        assert state == STATE

    def test_digest_detects_any_flip(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_snapshot(path, STATE, seq=1)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="digest|header|version|seq"):
            load_snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "absent.ckpt")

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        path.write_bytes(b"not a snapshot\n{}")
        with pytest.raises(SnapshotError, match="malformed"):
            load_snapshot(path)

    def test_unknown_version(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        save_snapshot(path, STATE, seq=1)
        data = path.read_bytes().replace(b" v1 ", b" v9 ", 1)
        path.write_bytes(data)
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        path.write_bytes(b"clue-snapshot v1")  # no newline
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_state_digest_is_canonical(self):
        # Key order must not matter: the digest covers canonical JSON.
        assert state_digest({"a": 1, "b": 2}) == state_digest(
            {"b": 2, "a": 1}
        )


class TestStore:
    def test_retention(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in (10, 20, 30):
            store.write(STATE, seq)
        assert [p.name for p in store.paths()] == [
            "snap-0000000020.ckpt",
            "snap-0000000030.ckpt",
        ]
        assert store.oldest_seq() == 20

    def test_load_latest(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        store.write({"n": 1}, 10)
        store.write({"n": 2}, 20)
        seq, state, path = store.load_latest()
        assert (seq, state["n"]) == (20, 2)
        assert path.name == "snap-0000000020.ckpt"

    def test_fallback_skips_corrupt(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        store.write({"n": 1}, 10)
        newest = store.write({"n": 2}, 20)
        newest.write_bytes(b"garbage")
        seq, state, _path = store.load_latest()
        assert (seq, state["n"]) == (10, 1)

    def test_no_valid_snapshot_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotError, match="no valid snapshot"):
            store.load_latest()
        store.write(STATE, 5).write_bytes(b"garbage")
        with pytest.raises(SnapshotError, match="1 file"):
            store.load_latest()
