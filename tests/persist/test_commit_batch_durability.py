"""Property test: commit_batch acks never outrun the journal.

``commit_batch`` must fsync the journal before it returns — the ack a
server forwards to a client (and the replication watermark the shipper
advances) both stand on that ordering.  So the property: for ANY stream
of update batches, ANY pump budget, and a crash at the worst possible
moment — right between the journal fsync and the ack reaching the
client, with the unsynced journal tail destroyed (power loss) — a
restore reproduces the exact pre-crash state.  No acked-but-lost update
can exist, because everything acked is in the synced journal by
construction, and the replay is deterministic.
"""

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.system import ClueSystem
from repro.engine.simulator import EngineConfig
from repro.net.prefix import Prefix
from repro.persist.manager import PersistenceManager
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.updategen import (
    UpdateGenerator,
    UpdateKind,
    UpdateMessage,
)

_RIBS = {}


def small_rib(seed):
    if seed not in _RIBS:
        _RIBS[seed] = generate_rib(seed, RibParameters(size=80))
    return _RIBS[seed]


def small_config():
    return SystemConfig(
        engine=EngineConfig(chip_count=2, dred_capacity=64, queue_capacity=64),
        update_queue_capacity=64,
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    batch_sizes=st.lists(
        st.integers(min_value=1, max_value=10), min_size=1, max_size=5
    ),
    budget=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    power_loss=st.booleans(),
)
def test_acked_batches_survive_worst_case_crash(
    seed, batch_sizes, budget, power_loss
):
    with tempfile.TemporaryDirectory() as tmp:
        routes = small_rib(seed % 5)
        system = ClueSystem(routes, small_config())
        manager = PersistenceManager(
            system, Path(tmp) / "state", sync_interval=4
        )
        generator = UpdateGenerator(routes, seed=seed)
        for size in batch_sizes:
            # Every returned ack implies "journaled and fsynced": the
            # crash below may only lose what was never acked.
            manager.commit_batch(generator.take(size), budget=budget)
        live_fingerprint = system.state_fingerprint()
        manager.crash(power_loss=power_loss)

        restored, _report = PersistenceManager.restore(Path(tmp) / "state")
        try:
            assert restored.system.state_fingerprint() == live_fingerprint
        finally:
            restored.close()


def test_crash_between_fsync_and_ack_keeps_the_batch():
    """The narrowest window, spelled out: one batch, commit_batch has
    returned (journal synced) but pretend the ack never left the
    process — power-loss crash, restore, the announce must be there."""
    with tempfile.TemporaryDirectory() as tmp:
        routes = small_rib(1)
        system = ClueSystem(routes, small_config())
        manager = PersistenceManager(
            system, Path(tmp) / "state", sync_interval=64
        )
        prefix = Prefix.parse("192.0.2.0/24")
        accepted, _shed, _applied = manager.commit_batch(
            [UpdateMessage(UpdateKind.ANNOUNCE, prefix, 99, 0.0)]
        )
        assert accepted == 1
        manager.crash(power_loss=True)

        restored, _report = PersistenceManager.restore(Path(tmp) / "state")
        try:
            restored.drain_updates()
            assert restored.system.process_lookups([prefix.network]) == [99]
        finally:
            restored.close()
