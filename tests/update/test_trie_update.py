"""Tests for the TTF1 stage updaters."""

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from repro.update.trie_update import OnrtcTrieUpdater, PlainTrieUpdater
from repro.workload.updategen import UpdateGenerator, UpdateKind, UpdateMessage


def bits(pattern):
    return Prefix.from_bits(pattern)


def announce(pattern, hop, at=0.0):
    return UpdateMessage(UpdateKind.ANNOUNCE, bits(pattern), hop, at)


def withdraw(pattern, at=0.0):
    return UpdateMessage(UpdateKind.WITHDRAW, bits(pattern), None, at)


class TestPlainUpdater:
    def test_insert_applies(self):
        updater = PlainTrieUpdater([])
        outcome = updater.apply(announce("1010", 3))
        assert updater.trie.get(bits("1010")) == 3
        assert outcome.nodes_touched == 5  # root + 4 path nodes
        assert outcome.diff is None

    def test_withdraw_counts_pruning(self):
        updater = PlainTrieUpdater([(bits("1010"), 3)])
        outcome = updater.apply(withdraw("1010"))
        assert outcome.nodes_touched == 5 + 4  # path + pruned chain

    def test_withdraw_absent(self):
        updater = PlainTrieUpdater([])
        outcome = updater.apply(withdraw("1"))
        assert outcome.nodes_touched == 2

    def test_stream_consistency(self, small_rib):
        updater = PlainTrieUpdater(small_rib)
        shadow = BinaryTrie.from_routes(small_rib)
        for message in UpdateGenerator(small_rib, seed=1).take(400):
            updater.apply(message)
            if message.kind is UpdateKind.ANNOUNCE:
                shadow.insert(message.prefix, message.next_hop)
            else:
                shadow.delete(message.prefix)
        assert updater.trie.as_dict() == shadow.as_dict()


class TestOnrtcUpdater:
    def test_diff_returned(self):
        updater = OnrtcTrieUpdater([], mode=CompressionMode.STRICT)
        outcome = updater.apply(announce("10", 1))
        assert outcome.diff is not None
        assert (bits("10"), 1) in outcome.diff.adds

    def test_work_exceeds_plain(self, small_rib):
        """CLUE's TTF1 runs a little longer than ground truth (Figure 10)."""
        plain = PlainTrieUpdater(small_rib)
        onrtc = OnrtcTrieUpdater(small_rib)
        plain_total = 0
        onrtc_total = 0
        for message in UpdateGenerator(small_rib, seed=2).take(300):
            plain_total += plain.apply(message).nodes_touched
            onrtc_total += onrtc.apply(message).nodes_touched
        assert onrtc_total > plain_total

    def test_table_tracks_compression(self, small_rib):
        updater = OnrtcTrieUpdater(small_rib)
        shadow = BinaryTrie.from_routes(small_rib)
        for message in UpdateGenerator(small_rib, seed=3).take(150):
            updater.apply(message)
            if message.kind is UpdateKind.ANNOUNCE:
                shadow.insert(message.prefix, message.next_hop)
            else:
                shadow.delete(message.prefix)
        assert updater.table.table == compress(
            shadow, CompressionMode.DONT_CARE
        )
