"""End-to-end tests of the TTF pipelines — the paper's update story."""

import pytest

from repro.compress.verify import is_disjoint_table
from repro.tcam.device import MultipleMatchError
from repro.update.pipeline import (
    ClplUpdatePipeline,
    ClueUpdatePipeline,
    default_dred_banks,
)
from repro.update.ttf import UpdateCostModel
from repro.workload.updategen import UpdateGenerator, UpdateParameters

STRUCTURAL_MIX = UpdateParameters(
    modify_fraction=0.0,
    new_prefix_fraction=0.5,
    withdraw_fraction=0.5,
)


@pytest.fixture(scope="module")
def reports(small_rib_module):
    routes = small_rib_module
    clue = ClueUpdatePipeline(
        routes, dred_banks=default_dred_banks(4, 512, True)
    )
    clpl = ClplUpdatePipeline(
        routes, dred_banks=default_dred_banks(4, 512, False)
    )
    # Warm the DRed banks so TTF3 maintenance has something to invalidate.
    for prefix, hop in routes[:800]:
        for bank in clue.dred_stage.caches:
            bank.insert(prefix, hop, owner=(bank.chip_index + 1) % 4)
        for bank in clpl.dred_stage.caches:
            bank.insert(prefix, hop, owner=bank.chip_index)
    messages = UpdateGenerator(
        routes, seed=11, parameters=STRUCTURAL_MIX
    ).take(600)
    return clue.run(messages), clpl.run(messages), clue, clpl


@pytest.fixture(scope="module")
def small_rib_module():
    from repro.workload.ribgen import RibParameters, generate_rib

    return generate_rib(42, RibParameters(size=2_000))


class TestRelativePerformance:
    def test_ttf2_clue_is_order_of_magnitude_better(self, reports):
        clue, clpl, *_ = reports
        assert clpl.ttf2().mean_us / clue.ttf2().mean_us > 3.0

    def test_ttf3_clue_flat_and_small(self, reports):
        clue, clpl, *_ = reports
        assert clue.ttf3().mean_us < 0.06
        assert clpl.ttf3().mean_us / clue.ttf3().mean_us > 3.0

    def test_ttf1_clue_a_little_longer(self, reports):
        clue, clpl, *_ = reports
        assert clue.ttf1().mean_us > clpl.ttf1().mean_us
        assert clue.ttf1().mean_us < 10 * clpl.ttf1().mean_us

    def test_total_ttf_clpl_much_larger(self, reports):
        """Figure 14: total TTF of CLPL ≈ 2.3× CLUE's."""
        clue, clpl, *_ = reports
        assert clpl.total().mean_us / clue.total().mean_us > 1.5

    def test_clpl_ttf2_in_paper_band(self, reports):
        """Figure 11: the PLO layout averages ~15 shifts ≈ 0.36 µs."""
        _, clpl, *_ = reports
        assert 0.15 <= clpl.ttf2().mean_us <= 0.8

    def test_clue_parallel_23_reading(self, reports):
        clue, clpl, *_ = reports
        for sample in clue.samples[:50]:
            assert sample.ttf23_us == max(sample.ttf2_us, sample.ttf3_us)
        for sample in clpl.samples[:50]:
            assert sample.ttf23_us == sample.ttf2_us + sample.ttf3_us


class TestStructuralInvariants:
    def test_tcams_match_tables(self, reports):
        *_, clue, clpl = reports
        assert clue.tcam_matches_table()
        assert clpl.tcam_matches_table()

    def test_clue_tcam_stays_disjoint_and_encoderless(self, reports):
        *_, clue, _clpl = reports
        stored = {
            entry.prefix: entry.next_hop
            for entry in clue.tcam_stage.updater.entries()
        }
        assert is_disjoint_table(stored)
        # An encoder-less search across the whole chip never multi-matches.
        for prefix in list(stored)[:200]:
            try:
                hit = clue.tcam_stage.device.search(prefix.network)
            except MultipleMatchError:  # pragma: no cover - failure path
                pytest.fail("CLUE TCAM produced a multi-match")
            assert hit is not None and hit.next_hop == stored[prefix]

    def test_lookups_correct_after_churn(self, reports, rng):
        *_, clue, clpl = reports
        reference = clue.trie_stage.table.source
        plo_reference = clpl.trie_stage.trie
        for _ in range(300):
            address = rng.randrange(1 << 32)
            expected_clpl = plo_reference.lookup(address)
            hit = clpl.tcam_stage.device.search(address)
            assert (hit.next_hop if hit else None) == expected_clpl
            expected_clue = reference.lookup(address)
            if expected_clue is not None:
                hit = clue.tcam_stage.device.search(address)
                assert hit is not None and hit.next_hop == expected_clue

    def test_totals_accumulate(self, reports):
        *_, clue, clpl = reports
        assert clue.totals.updates == clpl.totals.updates == 600
        assert clpl.totals.tcam_moves > clue.totals.tcam_moves
        assert clpl.totals.sram_accesses > 0
        assert clue.totals.sram_accesses == 0


class TestCostModel:
    def test_model_conversions(self):
        model = UpdateCostModel()
        assert model.trie_us(10) == pytest.approx(0.05)
        assert model.tcam_us(moves=1) == pytest.approx(0.024)
        assert model.dred_us(10, 1) == pytest.approx(0.094)

    def test_report_windows(self, reports):
        clue, *_ = reports
        windows = clue.windowed(lambda s: s.total_us, window_seconds=0.05)
        assert windows
        assert sum(window.count for window in windows) == len(clue)
