"""Exact-value tests for the TTF report aggregations."""

import pytest

from repro.update.ttf import (
    TtfReport,
    TtfSample,
    UpdateCostModel,
    ratio_of_means,
)


def sample(ts, t1, t2, t3, parallel=False):
    return TtfSample(ts, t1, t2, t3, parallel_23=parallel)


class TestSample:
    def test_serial_23(self):
        assert sample(0, 0.1, 0.2, 0.3).ttf23_us == pytest.approx(0.5)

    def test_parallel_23(self):
        assert sample(0, 0.1, 0.2, 0.3, parallel=True).ttf23_us == 0.3

    def test_total(self):
        assert sample(0, 0.1, 0.2, 0.3).total_us == pytest.approx(0.6)
        assert sample(0, 0.1, 0.2, 0.3, parallel=True).total_us == pytest.approx(0.4)


class TestReport:
    def test_aggregations(self):
        report = TtfReport("x")
        report.add(sample(0.0, 0.1, 0.2, 0.3))
        report.add(sample(1.0, 0.3, 0.4, 0.1))
        assert len(report) == 2
        assert report.ttf1().min_us == pytest.approx(0.1)
        assert report.ttf1().mean_us == pytest.approx(0.2)
        assert report.ttf1().max_us == pytest.approx(0.3)
        assert report.ttf2().mean_us == pytest.approx(0.3)
        assert report.total().mean_us == pytest.approx(0.7)

    def test_empty_report(self):
        report = TtfReport("empty")
        assert report.ttf1().mean_us == 0.0
        assert report.total().max_us == 0.0

    def test_windowed_means(self):
        report = TtfReport("w")
        for timestamp, value in ((0.1, 1.0), (0.2, 3.0), (1.1, 5.0)):
            report.add(sample(timestamp, value, 0, 0))
        windows = report.windowed(lambda s: s.ttf1_us, 1.0)
        assert len(windows) == 2
        assert windows[0].mean_us == pytest.approx(2.0)
        assert windows[0].count == 2
        assert windows[1].mean_us == pytest.approx(5.0)
        assert windows[1].start_seconds == pytest.approx(1.0)

    def test_windowed_skips_empty_buckets(self):
        report = TtfReport("gap")
        report.add(sample(0.1, 1.0, 0, 0))
        report.add(sample(5.1, 2.0, 0, 0))
        windows = report.windowed(lambda s: s.ttf1_us, 1.0)
        assert len(windows) == 2
        assert sum(window.count for window in windows) == 2

    def test_windowed_rejects_bad_window(self):
        with pytest.raises(ValueError):
            TtfReport("x").windowed(lambda s: s.ttf1_us, 0)

    def test_unsorted_timestamps_handled(self):
        report = TtfReport("u")
        report.add(sample(2.5, 4.0, 0, 0))
        report.add(sample(0.5, 2.0, 0, 0))
        windows = report.windowed(lambda s: s.ttf1_us, 1.0)
        assert [window.mean_us for window in windows] == [2.0, 4.0]


class TestCostModel:
    def test_defaults_match_paper_constants(self):
        model = UpdateCostModel()
        assert model.tcam.move_ns == 24.0
        assert model.tcam_us(moves=15) == pytest.approx(0.36)

    def test_dred_cost_components(self):
        model = UpdateCostModel(sram_access_ns=10.0)
        assert model.dred_us(5, 2) == pytest.approx((50 + 48) / 1000)


class TestRatioOfMeans:
    def test_basic(self):
        assert ratio_of_means([1.0, 3.0], [2.0, 2.0]) == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert ratio_of_means([], [1.0]) is None
        assert ratio_of_means([1.0], []) is None

    def test_zero_denominator(self):
        assert ratio_of_means([1.0], [0.0]) is None
