"""Tests for update-storm backpressure: UpdateQueue and UpdateScheduler."""

import pytest

from repro.engine.queues import UpdateQueue
from repro.update.pipeline import ClueUpdatePipeline, UpdateScheduler
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.updategen import (
    UpdateGenerator,
    UpdateParameters,
    UpdateKind,
)


@pytest.fixture()
def routes():
    return generate_rib(21, RibParameters(size=400))


def structural_updates(routes, count, seed=3):
    """Announce-new/withdraw mix — every message changes the table."""
    generator = UpdateGenerator(
        routes,
        seed=seed,
        parameters=UpdateParameters(
            modify_fraction=0.0,
            new_prefix_fraction=0.6,
            withdraw_fraction=0.4,
        ),
    )
    return generator.take(count)


class TestUpdateQueue:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            UpdateQueue(0)

    def test_shed_accounting(self):
        queue = UpdateQueue(2)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")
        assert queue.offered == 3
        assert queue.accepted == 2
        assert queue.shed == 1
        assert queue.peak_occupancy == 2
        assert queue.occupancy == 1.0

    def test_fifo_order(self):
        queue = UpdateQueue(4)
        for item in ("a", "b", "c"):
            queue.offer(item)
        assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]
        assert queue.is_empty


class TestSchedulerCalm:
    def test_calm_pump_applies_fully(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        scheduler = UpdateScheduler(pipeline, capacity=64)
        for message in structural_updates(routes, 10):
            assert scheduler.offer(message)
        assert scheduler.pump(budget=10) == 10
        assert not scheduler.storm_mode
        assert scheduler.stats.deferred == 0
        assert pipeline.tcam_matches_table()

    def test_watermark_validation(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        with pytest.raises(ValueError):
            UpdateScheduler(pipeline, high_watermark=0.0)
        with pytest.raises(ValueError):
            UpdateScheduler(
                pipeline, high_watermark=0.5, low_watermark=0.5
            )

    def test_on_diff_callback(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        diffs = []
        scheduler = UpdateScheduler(
            pipeline, capacity=16, on_diff=diffs.append
        )
        for message in structural_updates(routes, 5):
            scheduler.offer(message)
        scheduler.pump(budget=5)
        assert len(diffs) == 5


class TestSchedulerStorm:
    def test_flood_enters_storm_and_defers(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        scheduler = UpdateScheduler(
            pipeline, capacity=8, high_watermark=0.5, low_watermark=0.25
        )
        messages = structural_updates(routes, 12)
        accepted = sum(scheduler.offer(message) for message in messages)
        assert accepted == 8
        assert scheduler.stats.shed == 4
        assert scheduler.storm_mode
        # Pump a little while still above the low watermark: trie stage
        # runs, TCAM writes are deferred, the mirror goes stale.
        scheduler.pump(budget=2)
        assert scheduler.stats.deferred == 2
        assert not pipeline.tcam_matches_table()
        # The control plane itself is fresh (trie took the updates).
        assert pipeline.totals.updates == 2

    def test_exit_flushes_automatically(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        scheduler = UpdateScheduler(
            pipeline, capacity=8, high_watermark=0.5, low_watermark=0.25
        )
        for message in structural_updates(routes, 8):
            scheduler.offer(message)
        assert scheduler.storm_mode
        scheduler.pump(budget=8)
        # Occupancy fell to zero → storm exited → deferred batch flushed.
        assert not scheduler.storm_mode
        assert scheduler.stats.storm_exits == 1
        assert scheduler.stats.pending_flush == 0
        assert pipeline.tcam_matches_table()

    def test_drain_restores_mirror(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        scheduler = UpdateScheduler(
            pipeline, capacity=16, high_watermark=0.25, low_watermark=0.0
        )
        for message in structural_updates(routes, 16):
            scheduler.offer(message)
        applied = scheduler.drain()
        assert applied == 16
        assert scheduler.queue.is_empty
        assert pipeline.tcam_matches_table()

    def test_flush_applies_in_offer_order(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        scheduler = UpdateScheduler(
            pipeline, capacity=16, high_watermark=0.25, low_watermark=0.0
        )
        for message in structural_updates(routes, 12):
            scheduler.offer(message)
        # Keep occupancy above the low watermark so the batch stays pending.
        scheduler.pump(budget=8)
        pending = scheduler.pending_diffs()
        assert pending, "storm should have deferred diffs"
        sequences = [seq for seq, _diff in pending]
        assert sequences == sorted(sequences)  # admission order, tagged
        assert scheduler.flush() == len(pending)
        assert scheduler.pending_diffs() == []
        assert pipeline.tcam_matches_table()

    def test_reordered_deferred_batch_is_rejected(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        scheduler = UpdateScheduler(
            pipeline, capacity=16, high_watermark=0.25, low_watermark=0.0
        )
        for message in structural_updates(routes, 8):
            scheduler.offer(message)
        scheduler.pump(budget=6)
        pending = scheduler.pending_diffs()
        assert len(pending) >= 2
        scheduler.restore_deferred(list(reversed(pending)), len(pending))
        with pytest.raises(AssertionError, match="offer order"):
            scheduler.flush()

    def test_on_flush_reports_batch_size(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        scheduler = UpdateScheduler(
            pipeline, capacity=8, high_watermark=0.5, low_watermark=0.25
        )
        batches = []
        scheduler.on_flush = batches.append
        for message in structural_updates(routes, 8):
            scheduler.offer(message)
        scheduler.pump(budget=8)  # storm exit flushes automatically
        assert batches == [scheduler.stats.flushed_diffs]
        scheduler.flush()  # empty flush must not fire the hook
        assert len(batches) == 1

    def test_pending_diffs_round_trip(self, routes):
        pipeline = ClueUpdatePipeline(routes)
        scheduler = UpdateScheduler(
            pipeline, capacity=16, high_watermark=0.25, low_watermark=0.0
        )
        for message in structural_updates(routes, 6):
            scheduler.offer(message)
        scheduler.pump(budget=4)
        saved = scheduler.pending_diffs()
        scheduler.restore_deferred(saved, next_seq=len(saved))
        assert scheduler.pending_diffs() == saved
        assert scheduler.flush() == len(saved)

    def test_dred_invalidation_not_deferred(self, routes):
        """Storm mode must still purge stale DRed entries immediately."""
        from repro.engine.dred import DredCache
        from repro.workload.updategen import UpdateMessage

        # Learn which compressed entry a withdrawal actually removes.
        message = victim = None
        for prefix, _ in routes[:20]:
            probe = ClueUpdatePipeline(routes)
            candidate = UpdateMessage(
                UpdateKind.WITHDRAW, prefix, None, 0.001
            )
            probe.apply(candidate)
            if probe.last_diff.removes:
                message = candidate
                victim = probe.last_diff.removes[0][0]
                break
        assert message is not None, "no withdrawal removed an entry"

        pipeline = ClueUpdatePipeline(routes)
        bank = DredCache(64, chip_index=0, exclude_own=False)
        pipeline.dred_stage.caches = [bank]
        bank.insert(victim, 1, owner=1)
        assert victim in bank
        scheduler = UpdateScheduler(
            pipeline, capacity=4, high_watermark=0.25, low_watermark=0.0
        )
        scheduler.offer(message)
        assert scheduler.storm_mode
        scheduler.pump(budget=1)
        assert scheduler.stats.deferred == 1
        assert victim not in bank
