"""Tests for the TTF2 stage TCAM mirrors."""

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import OnrtcTable
from repro.net.prefix import Prefix
from repro.update.tcam_update import ClueTcamMirror, PloTcamMirror
from repro.workload.updategen import UpdateGenerator, UpdateKind, UpdateMessage


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestPloMirror:
    def test_tracks_table(self, small_rib):
        mirror = PloTcamMirror(small_rib[:500])
        shadow = dict(small_rib[:500])
        for message in UpdateGenerator(small_rib[:500], seed=1).take(200):
            mirror.apply(message)
            if message.kind is UpdateKind.ANNOUNCE:
                shadow[message.prefix] = message.next_hop
            else:
                shadow.pop(message.prefix, None)
        stored = {e.prefix: e.next_hop for e in mirror.updater.entries()}
        assert stored == shadow

    def test_structural_updates_cost_many_moves(self, small_rib):
        """The ~15-shift average behind Figure 11's 0.36 µs."""
        mirror = PloTcamMirror(small_rib)
        moves = 0
        count = 0
        from repro.workload.updategen import UpdateParameters

        params = UpdateParameters(
            modify_fraction=0.0,
            new_prefix_fraction=0.5,
            withdraw_fraction=0.5,
        )
        for message in UpdateGenerator(
            small_rib, seed=2, parameters=params
        ).take(300):
            result = mirror.apply(message)
            moves += result.moves
            count += 1
        assert 5 < moves / count < 33

    def test_modify_in_place_is_free(self):
        mirror = PloTcamMirror([(bits("10"), 1)])
        result = mirror.apply(
            UpdateMessage(UpdateKind.ANNOUNCE, bits("10"), 2, 0.0)
        )
        assert result.moves == 0 and result.writes == 1


class TestClueMirror:
    def test_diff_application_tracks_table(self, small_rib):
        table = OnrtcTable(small_rib[:500], mode=CompressionMode.DONT_CARE)
        mirror = ClueTcamMirror(table.routes(), capacity=4_000)
        for message in UpdateGenerator(small_rib[:500], seed=3).take(200):
            if message.kind is UpdateKind.ANNOUNCE:
                diff = table.announce(message.prefix, message.next_hop)
            else:
                diff = table.withdraw(message.prefix)
            mirror.apply_diff(diff)
        stored = {e.prefix: e.next_hop for e in mirror.updater.entries()}
        assert stored == table.table

    def test_moves_at_most_one_per_entry_change(self, small_rib):
        table = OnrtcTable(small_rib[:500], mode=CompressionMode.DONT_CARE)
        mirror = ClueTcamMirror(table.routes(), capacity=4_000)
        for message in UpdateGenerator(small_rib[:500], seed=4).take(200):
            if message.kind is UpdateKind.ANNOUNCE:
                diff = table.announce(message.prefix, message.next_hop)
            else:
                diff = table.withdraw(message.prefix)
            result = mirror.apply_diff(diff)
            assert result.moves <= diff.entry_changes

    def test_encoder_free_chip(self, small_rib):
        table = OnrtcTable(small_rib[:200])
        mirror = ClueTcamMirror(table.routes())
        assert not mirror.device.priority_encoder
