"""Tests for the TTF3 stage DRed updaters."""

from repro.compress.onrtc import TableDiff
from repro.engine.dred import DredCache
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from repro.update.dred_update import ClplDredUpdater, ClueDredUpdater
from repro.workload.updategen import UpdateKind, UpdateMessage


def bits(pattern):
    return Prefix.from_bits(pattern)


def announce(pattern, hop):
    return UpdateMessage(UpdateKind.ANNOUNCE, bits(pattern), hop, 0.0)


def withdraw(pattern):
    return UpdateMessage(UpdateKind.WITHDRAW, bits(pattern), None, 0.0)


def banks(count=4, exclude_own=True):
    return [DredCache(64, index, exclude_own) for index in range(count)]


class TestClueDredUpdater:
    def test_flat_single_op_no_sram(self):
        updater = ClueDredUpdater(banks())
        diff = TableDiff(adds=[(bits("1"), 1)])
        outcome = updater.apply(announce("1", 1), diff)
        assert outcome.sram_accesses == 0
        assert outcome.tcam_ops == 1

    def test_removed_entries_probed(self):
        caches = banks()
        for cache in caches:
            cache.insert(bits("10"), 1, owner=(cache.chip_index + 1) % 4)
        updater = ClueDredUpdater(caches)
        diff = TableDiff(removes=[(bits("10"), 1)])
        outcome = updater.apply(withdraw("10"), diff)
        assert outcome.entries_removed == 4
        assert all(bits("10") not in cache for cache in caches)

    def test_delete_absent_does_nothing(self):
        updater = ClueDredUpdater(banks())
        outcome = updater.apply(
            withdraw("10"), TableDiff(removes=[(bits("10"), 1)])
        )
        assert outcome.entries_removed == 0
        assert outcome.tcam_ops == 1

    def test_without_diff_probes_withdrawn_prefix(self):
        caches = banks()
        caches[0].insert(bits("10"), 1, owner=1)
        updater = ClueDredUpdater(caches)
        outcome = updater.apply(withdraw("10"), None)
        assert outcome.entries_removed == 1


class TestClplDredUpdater:
    def test_sram_walk_charged(self):
        reference = BinaryTrie.from_routes([(bits("10101010"), 1)])
        updater = ClplDredUpdater(reference, banks(exclude_own=False))
        outcome = updater.apply(announce("10101010", 2))
        assert outcome.sram_accesses >= bits("10101010").length + 1

    def test_overlapping_expansions_invalidated(self):
        reference = BinaryTrie.from_routes([(bits("1"), 1)])
        caches = banks(exclude_own=False)
        for cache in caches:
            cache.insert(bits("100"), 1, owner=0)   # a cached expansion
            cache.insert(bits("0"), 2, owner=0)     # unrelated
        updater = ClplDredUpdater(reference, caches)
        outcome = updater.apply(announce("10", 3))
        assert outcome.entries_removed == 4  # 100* from each cache
        for cache in caches:
            assert bits("0") in cache
            assert bits("100") not in cache

    def test_cost_scales_with_damage(self):
        reference = BinaryTrie.from_routes([(bits("1"), 1)])
        caches = banks(exclude_own=False)
        for cache in caches:
            for value in range(8):
                cache.insert(Prefix((1 << 3) | value, 4), 1, owner=0)
        updater = ClplDredUpdater(reference, caches)
        outcome = updater.apply(withdraw("1"))
        assert outcome.tcam_ops == outcome.entries_removed == 32
