"""Tests for the synthetic traffic generator (the CAIDA stand-in)."""

from collections import Counter

from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters


class TestDeterminism:
    def test_same_seed_same_stream(self, small_rib):
        first = TrafficGenerator(small_rib, seed=1).take(500)
        second = TrafficGenerator(small_rib, seed=1).take(500)
        assert first == second

    def test_different_seed_differs(self, small_rib):
        assert TrafficGenerator(small_rib, seed=1).take(200) != TrafficGenerator(
            small_rib, seed=2
        ).take(200)


class TestCoverage:
    def test_addresses_mostly_covered(self, small_rib, small_trie):
        """Destinations are drawn from announced prefixes, so the table
        matches them."""
        stream = TrafficGenerator(small_rib, seed=3)
        covered = sum(
            1 for address in stream.take(1_000)
            if small_trie.lookup(address) is not None
        )
        assert covered == 1_000

    def test_iterator_protocol(self, small_rib):
        stream = TrafficGenerator(small_rib, seed=4)
        addresses = [next(stream) for _ in range(10)]
        assert len(addresses) == 10

    def test_empty_table_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            TrafficGenerator([], seed=1)


class TestSkewAndLocality:
    def test_zipf_skew(self, small_rib, small_trie):
        """Few prefixes should carry most of the traffic (Table II)."""
        stream = TrafficGenerator(small_rib, seed=5)
        matches = Counter()
        for address in stream.take(5_000):
            match = small_trie.lookup_prefix(address)
            if match:
                matches[match[0]] += 1
        total = sum(matches.values())
        top = sum(count for _, count in matches.most_common(len(small_rib) // 10))
        assert top / total > 0.5  # top 10% of prefixes > half the packets

    def test_locality_creates_repeats(self, small_rib):
        local = TrafficGenerator(
            small_rib, seed=6,
            parameters=TrafficParameters(locality=0.95),
        ).take(2_000)
        scattered = TrafficGenerator(
            small_rib, seed=6,
            parameters=TrafficParameters(locality=0.0),
        ).take(2_000)
        assert len(set(local)) < len(set(scattered))

    def test_bursts_reshuffle_working_set(self, small_rib):
        params = TrafficParameters(burst_length_mean=50.0)
        stream = TrafficGenerator(small_rib, seed=7, parameters=params)
        first = set(stream.take(1_000))
        later = set(stream.take(1_000))
        assert first != later


class TestTakeBatchEquivalence:
    """take(n) is a fast path, not a different stream: it must draw from
    the RNG in exactly the order n single next_packet() calls would."""

    def test_take_matches_single_draws(self, small_rib):
        batched = TrafficGenerator(small_rib, seed=11).take(3_000)
        single_stream = TrafficGenerator(small_rib, seed=11)
        singles = [single_stream.next_packet() for _ in range(3_000)]
        assert batched == singles

    def test_take_matches_across_parameters(self, small_rib):
        for params in (
            TrafficParameters(locality=0.0),
            TrafficParameters(locality=0.95),
            TrafficParameters(burst_length_mean=3.0),
            TrafficParameters(zipf_exponent=1.4),
        ):
            batched = TrafficGenerator(
                small_rib, seed=13, parameters=params
            ).take(1_000)
            stream = TrafficGenerator(small_rib, seed=13, parameters=params)
            assert batched == [stream.next_packet() for _ in range(1_000)]

    def test_interleaving_preserves_the_stream(self, small_rib):
        """Mixing take() chunks and single draws still yields one stream."""
        mixed_stream = TrafficGenerator(small_rib, seed=17)
        mixed = mixed_stream.take(100)
        mixed += [next(mixed_stream) for _ in range(57)]
        mixed += mixed_stream.take(343)
        reference = TrafficGenerator(small_rib, seed=17).take(500)
        assert mixed == reference

    def test_take_zero_and_empty_prefix_of_stream(self, small_rib):
        stream = TrafficGenerator(small_rib, seed=19)
        assert stream.take(0) == []
        assert len(stream.take(5)) == 5
