"""Tests for the synthetic BGP update stream."""

import pytest

from repro.trie.trie import BinaryTrie
from repro.workload.updategen import (
    UpdateGenerator,
    UpdateKind,
    UpdateMessage,
    UpdateParameters,
)
from repro.net.prefix import Prefix


class TestMessage:
    def test_announce_needs_hop(self):
        with pytest.raises(ValueError):
            UpdateMessage(UpdateKind.ANNOUNCE, Prefix.root(), None, 0.0)

    def test_withdraw_carries_no_hop(self):
        with pytest.raises(ValueError):
            UpdateMessage(UpdateKind.WITHDRAW, Prefix.root(), 3, 0.0)


class TestParameters:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            UpdateParameters(
                modify_fraction=0.5,
                new_prefix_fraction=0.5,
                withdraw_fraction=0.5,
            )


class TestStreamConsistency:
    def test_deterministic(self, small_rib):
        first = UpdateGenerator(small_rib, seed=1).take(300)
        second = UpdateGenerator(small_rib, seed=1).take(300)
        assert first == second

    def test_withdrawals_target_live_prefixes(self, small_rib):
        """Replaying the stream against a shadow table never misses."""
        shadow = BinaryTrie.from_routes(small_rib)
        for message in UpdateGenerator(small_rib, seed=2).take(1_000):
            if message.kind is UpdateKind.WITHDRAW:
                assert shadow.delete(message.prefix)
            else:
                shadow.insert(message.prefix, message.next_hop)

    def test_timestamps_monotone(self, small_rib):
        messages = UpdateGenerator(small_rib, seed=3).take(500)
        times = [message.timestamp for message in messages]
        assert times == sorted(times)
        assert times[0] > 0

    def test_mix_roughly_respected(self, small_rib):
        params = UpdateParameters(
            modify_fraction=0.5,
            new_prefix_fraction=0.25,
            withdraw_fraction=0.25,
        )
        messages = UpdateGenerator(small_rib, seed=4, parameters=params).take(
            2_000
        )
        withdraws = sum(
            1 for m in messages if m.kind is UpdateKind.WITHDRAW
        )
        assert 0.15 < withdraws / len(messages) < 0.35

    def test_structural_only_mix(self, small_rib):
        """The TTF benchmark mix: no in-place modifies."""
        params = UpdateParameters(
            modify_fraction=0.0,
            new_prefix_fraction=0.5,
            withdraw_fraction=0.5,
        )
        shadow = dict(small_rib)
        for message in UpdateGenerator(
            small_rib, seed=5, parameters=params
        ).take(1_000):
            if message.kind is UpdateKind.ANNOUNCE:
                assert message.prefix not in shadow  # genuinely new
                shadow[message.prefix] = message.next_hop
            else:
                del shadow[message.prefix]

    def test_bursts_compress_timestamps(self, small_rib):
        bursty = UpdateParameters(
            burst_probability=0.5, burst_rate_multiplier=100.0
        )
        calm = UpdateParameters(burst_probability=0.0)
        bursty_span = UpdateGenerator(
            small_rib, seed=6, parameters=bursty
        ).take(2_000)[-1].timestamp
        calm_span = UpdateGenerator(
            small_rib, seed=6, parameters=calm
        ).take(2_000)[-1].timestamp
        assert bursty_span < calm_span

    def test_flap_concentration(self, small_rib):
        """Most updates touch a small pool of flapping prefixes."""
        from collections import Counter

        messages = UpdateGenerator(small_rib, seed=7).take(3_000)
        touched = Counter(message.prefix for message in messages)
        top_share = sum(
            count for _, count in touched.most_common(300)
        ) / len(messages)
        uniform_share = 300 / len(touched)
        assert top_share > 2 * uniform_share
