"""Tests for the synthetic RIB generator (the RIPE stand-in)."""

import pytest

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compression_report
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from repro.workload.ribgen import (
    DEFAULT_LENGTH_DISTRIBUTION,
    RibParameters,
    generate_rib,
    length_histogram,
    rib_trie,
)


class TestDeterminism:
    def test_same_seed_same_table(self):
        params = RibParameters(size=500)
        assert generate_rib(5, params) == generate_rib(5, params)

    def test_different_seeds_differ(self):
        params = RibParameters(size=500)
        assert generate_rib(5, params) != generate_rib(6, params)

    def test_rib_trie_matches(self):
        params = RibParameters(size=300)
        assert rib_trie(1, params).as_dict() == dict(generate_rib(1, params))


class TestShape:
    def test_requested_size(self):
        table = generate_rib(1, RibParameters(size=1_000))
        assert len(table) == 1_000

    def test_no_duplicate_prefixes(self):
        table = generate_rib(2, RibParameters(size=2_000))
        assert len({prefix for prefix, _ in table}) == len(table)

    def test_hop_alphabet_bounded(self):
        params = RibParameters(size=1_000, hop_count=8)
        hops = {hop for _, hop in generate_rib(3, params)}
        assert hops <= set(range(8))

    def test_length_histogram_peaks_at_24(self):
        table = generate_rib(4, RibParameters(size=5_000))
        histogram = length_histogram(table)
        assert max(histogram, key=histogram.get) == 24
        assert min(histogram) >= 8

    def test_default_route_option(self):
        params = RibParameters(size=100, include_default_route=True)
        table = dict(generate_rib(1, params))
        assert Prefix.root() in table

    def test_overlap_present(self):
        """Real tables overlap (aggregates + more-specifics); the generator
        must reproduce that or ONRTC has nothing to do."""
        trie = BinaryTrie.from_routes(generate_rib(1, RibParameters(size=2_000)))
        assert trie.overlap_count() > 0

    def test_distribution_weights_are_positive(self):
        assert all(w > 0 for w in DEFAULT_LENGTH_DISTRIBUTION.values())


class TestCalibration:
    @pytest.mark.slow
    def test_onrtc_ratio_in_paper_band(self):
        """Figure 8 calibration: don't-care ONRTC lands near the paper's
        ~71% average on calibrated-scale tables."""
        ratios = []
        for seed in (1, 2, 3):
            trie = BinaryTrie.from_routes(
                generate_rib(seed, RibParameters(size=20_000))
            )
            ratios.append(
                compression_report(trie, CompressionMode.DONT_CARE).ratio
            )
        mean_ratio = sum(ratios) / len(ratios)
        assert 0.60 <= mean_ratio <= 0.82
