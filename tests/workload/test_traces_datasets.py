"""Tests for trace (de)serialisation and the Table I datasets."""

import pytest

from repro.workload.datasets import (
    DEFAULT_SIZE_SCALE,
    ROUTERS,
    router_by_id,
    router_rib,
)
from repro.workload.traces import (
    TraceFormatError,
    load_packets,
    load_table,
    load_updates,
    save_packets,
    save_table,
    save_updates,
)
from repro.workload.updategen import UpdateGenerator
from repro.workload.trafficgen import TrafficGenerator


class TestTableTraces:
    def test_round_trip(self, tmp_path, small_rib):
        path = tmp_path / "table.txt"
        save_table(small_rib[:200], path)
        assert load_table(path) == small_rib[:200]

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "table.txt"
        path.write_text("# comment\n\n10.0.0.0/8 3\n")
        table = load_table(path)
        assert len(table) == 1 and table[0][1] == 3

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("10.0.0.0/8\n")
        with pytest.raises(TraceFormatError):
            load_table(path)


class TestUpdateTraces:
    def test_round_trip(self, tmp_path, small_rib):
        messages = UpdateGenerator(small_rib, seed=1).take(200)
        path = tmp_path / "updates.txt"
        save_updates(messages, path)
        loaded = load_updates(path)
        assert len(loaded) == 200
        for original, restored in zip(messages, loaded):
            assert original.kind == restored.kind
            assert original.prefix == restored.prefix
            assert original.next_hop == restored.next_hop
            assert original.timestamp == pytest.approx(
                restored.timestamp, abs=1e-6
            )

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1.0 frobnicate 10.0.0.0/8\n")
        with pytest.raises(TraceFormatError):
            load_updates(path)


class TestPacketTraces:
    def test_round_trip(self, tmp_path, small_rib):
        addresses = TrafficGenerator(small_rib, seed=2).take(300)
        path = tmp_path / "packets.txt"
        save_packets(addresses, path)
        assert load_packets(path) == addresses

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("999.0.0.1\n")
        with pytest.raises(TraceFormatError):
            load_packets(path)


class TestDatasets:
    def test_twelve_routers(self):
        assert len(ROUTERS) == 12
        assert len({router.router_id for router in ROUTERS}) == 12
        assert len({router.seed for router in ROUTERS}) == 12

    def test_lookup_by_id(self):
        assert router_by_id("rrc01").location == "LINX, London"
        with pytest.raises(KeyError):
            router_by_id("rrc99")

    def test_rib_scaled_and_deterministic(self):
        router = router_by_id("rrc01")
        table = router_rib(router, size_scale=1 / 256)
        assert len(table) == max(64, int(router.base_size / 256))
        assert table == router_rib(router, size_scale=1 / 256)

    def test_default_scale_reasonable(self):
        assert 0 < DEFAULT_SIZE_SCALE <= 1
