"""Tests for the FaultInjector against a live engine."""

from repro.engine.builders import build_clue_engine
from repro.engine.simulator import EngineConfig
from repro.faults import FaultInjector, FaultSchedule
from repro.workload.ribgen import RibParameters, generate_rib


def small_engine(chips=4):
    routes = generate_rib(3, RibParameters(size=400))
    return build_clue_engine(
        routes,
        EngineConfig(chip_count=chips, queue_capacity=16, dred_capacity=64),
        partitions_per_chip=2,
    ).engine


class TestTick:
    def test_applies_due_events_in_order(self):
        engine = small_engine()
        schedule = FaultSchedule().chip_down(5, chip=1).chip_up(9, chip=1)
        injector = FaultInjector(engine, schedule)
        assert injector.tick(0) == 0
        assert injector.tick(5) == 1
        assert not engine.chips[1].alive
        assert injector.tick(20) == 1
        assert engine.chips[1].alive
        assert injector.exhausted

    def test_late_tick_catches_up(self):
        engine = small_engine()
        schedule = FaultSchedule().chip_down(2, chip=0).chip_down(4, chip=1)
        injector = FaultInjector(engine, schedule)
        assert injector.tick(100) == 2
        assert len(injector.applied) == 2


class TestChipEvents:
    def test_kill_requeues_orphans(self):
        engine = small_engine()
        chip = engine.chips[2]
        from repro.engine.events import LookupKind, Packet

        chip.queue.push((Packet(0, 1, 2, 0), LookupKind.MAIN))
        chip.queue.push((Packet(1, 2, 2, 0), LookupKind.MAIN))
        engine.kill_chip(2)
        assert chip.queue.is_empty
        assert [packet.tag for packet in engine._pending] == [0, 1]
        assert engine.stats.chip_failures == 1

    def test_kill_and_revive_idempotent(self):
        engine = small_engine()
        engine.kill_chip(1)
        engine.kill_chip(1)
        assert engine.stats.chip_failures == 1
        engine.revive_chip(1)
        engine.revive_chip(1)
        assert engine.stats.chip_recoveries == 1
        assert engine.alive_chips == [0, 1, 2, 3]


class TestCorruption:
    def test_corrupt_flips_one_hop(self):
        engine = small_engine()
        before = dict(engine.chips[0].table.routes())
        schedule = FaultSchedule(seed=5).corrupt(0, chip=0)
        FaultInjector(engine, schedule).tick(0)
        after = dict(engine.chips[0].table.routes())
        assert before.keys() == after.keys()
        changed = [p for p in before if before[p] != after[p]]
        assert len(changed) == 1
        assert engine.stats.corrupted_entries == 1

    def test_corruption_is_seed_deterministic(self):
        outcomes = []
        for _ in range(2):
            engine = small_engine()
            schedule = FaultSchedule(seed=5).corrupt(0, chip=0)
            FaultInjector(engine, schedule).tick(0)
            outcomes.append(dict(engine.chips[0].table.routes()))
        assert outcomes[0] == outcomes[1]


class TestStallAndStorm:
    def test_stall_blocks_chip(self):
        engine = small_engine()
        schedule = FaultSchedule().stall(0, chip=3, cycles=40)
        FaultInjector(engine, schedule).tick(0)
        assert engine.chips[3].busy_until >= 40

    def test_storm_without_sink_stalls_survivors(self):
        engine = small_engine()
        engine.kill_chip(0)
        schedule = FaultSchedule().storm(0, count=30)
        FaultInjector(engine, schedule).tick(0)
        assert engine.chips[0].busy_until == 0  # dead chip untouched
        assert all(engine.chips[i].busy_until == 10 for i in (1, 2, 3))

    def test_storm_sink_receives_burst(self):
        engine = small_engine()
        calls = []
        schedule = FaultSchedule().storm(7, count=123)
        injector = FaultInjector(
            engine, schedule, storm_sink=lambda cycle, count: calls.append(
                (cycle, count)
            )
        )
        injector.tick(10)
        assert calls == [(7, 123)]
