"""Tests for fault schedules: validation, ordering, determinism, traces."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultSchedule, merge_schedules
from repro.workload.traces import TraceFormatError, load_faults, save_faults


class TestEventValidation:
    def test_negative_cycle(self):
        with pytest.raises(ValueError):
            FaultEvent(-1, FaultKind.STORM, count=1)

    @pytest.mark.parametrize(
        "kind",
        [FaultKind.CHIP_DOWN, FaultKind.CHIP_UP, FaultKind.CORRUPT],
    )
    def test_chip_events_need_chip(self, kind):
        with pytest.raises(ValueError):
            FaultEvent(0, kind)

    def test_stall_needs_window(self):
        with pytest.raises(ValueError):
            FaultEvent(0, FaultKind.STALL, chip=0, duration=0)

    def test_storm_needs_updates(self):
        with pytest.raises(ValueError):
            FaultEvent(0, FaultKind.STORM, count=0)


class TestScheduleBuilding:
    def test_builders_keep_cycle_order(self):
        schedule = (
            FaultSchedule()
            .chip_up(600, chip=1)
            .chip_down(100, chip=1)
            .storm(300, count=50)
        )
        assert [event.cycle for event in schedule] == [100, 300, 600]

    def test_tie_is_stable(self):
        schedule = FaultSchedule().chip_down(5, chip=0).corrupt(5, chip=1)
        kinds = [event.kind for event in schedule.events]
        assert kinds == [FaultKind.CHIP_DOWN, FaultKind.CORRUPT]

    def test_constructor_sorts(self):
        events = [
            FaultEvent(9, FaultKind.STORM, count=1),
            FaultEvent(2, FaultKind.CHIP_DOWN, chip=0),
        ]
        assert FaultSchedule(events=events).events[0].cycle == 2

    def test_introspection(self):
        schedule = (
            FaultSchedule().chip_down(10, chip=2).stall(40, chip=0, cycles=8)
        )
        assert schedule.chips_touched() == [0, 2]
        assert schedule.last_cycle() == 40
        assert len(schedule) == 2

    def test_merge(self):
        a = FaultSchedule(seed=3).chip_down(50, chip=0)
        b = FaultSchedule(seed=9).storm(10, count=5)
        merged = merge_schedules([a, b])
        assert [event.cycle for event in merged] == [10, 50]
        assert merged.seed == 3


class TestRandomGeneration:
    def test_deterministic(self):
        one = FaultSchedule.random(seed=7, horizon=1000, chip_count=4)
        two = FaultSchedule.random(seed=7, horizon=1000, chip_count=4)
        assert one.events == two.events
        assert one.seed == 7

    def test_seed_changes_schedule(self):
        one = FaultSchedule.random(seed=1, horizon=10_000, chip_count=4)
        two = FaultSchedule.random(seed=2, horizon=10_000, chip_count=4)
        assert one.events != two.events

    def test_counts_respected(self):
        schedule = FaultSchedule.random(
            seed=5,
            horizon=100_000,
            chip_count=4,
            chip_failures=2,
            corruptions=3,
            stalls=1,
            storms=2,
        )
        kinds = [event.kind for event in schedule]
        assert kinds.count(FaultKind.CHIP_DOWN) == 2
        assert kinds.count(FaultKind.CORRUPT) == 3
        assert kinds.count(FaultKind.STALL) == 1
        assert kinds.count(FaultKind.STORM) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(seed=0, horizon=0, chip_count=4)
        with pytest.raises(ValueError):
            FaultSchedule.random(seed=0, horizon=10, chip_count=0)


class TestTraceFormat:
    def test_roundtrip(self, tmp_path):
        schedule = (
            FaultSchedule(seed=11)
            .chip_down(100, chip=2)
            .chip_up(700, chip=2)
            .corrupt(40, chip=1)
            .stall(250, chip=0, cycles=32)
            .storm(500, count=300)
        )
        path = tmp_path / "faults.txt"
        save_faults(schedule, path)
        loaded = load_faults(path)
        assert loaded.events == schedule.events
        assert loaded.seed == 11

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "faults.txt"
        path.write_text("# comment\n\nseed 4\n10 chip-down 1\n")
        loaded = load_faults(path)
        assert loaded.seed == 4
        assert len(loaded) == 1

    @pytest.mark.parametrize(
        "line",
        [
            "10 explode 1",
            "10 chip-down",
            "ten chip-down 1",
            "10 stall 1",
            "10 storm",
        ],
    )
    def test_malformed_lines(self, tmp_path, line):
        path = tmp_path / "faults.txt"
        path.write_text(line + "\n")
        with pytest.raises(TraceFormatError):
            load_faults(path)
