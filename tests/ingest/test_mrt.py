"""MRT parser: record accounting, wire-format corners, failure modes."""

import bz2
import struct

import pytest

from repro.ingest import (
    FixtureSpec,
    IngestFormatError,
    build_rib_mrt,
    build_updates_mrt,
    fixture_routes,
    iter_records,
    load_rib,
    load_updates,
)
from repro.ingest.fixtures import next_hop_ip


class TestRibDump:
    def test_every_record_accounted(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        counters = dump.counters
        assert counters.total == dump.records
        assert counters.parsed_total + counters.skipped_total == dump.records
        counters.verify(dump.records)  # must not raise

    def test_skip_reasons_are_named(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        assert dump.counters.skipped == {
            "rib-ipv6-unicast": 1,
            "rib-generic": 1,
            "ospfv2": 1,
        }

    def test_peer_index_table(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        assert len(dump.peers) == 3
        # Peer 2 is IPv6-addressed: parsed, with no IPv4 address.
        assert dump.peers[2].ip is None
        assert dump.peers[0].asn == 64500
        assert dump.peers[1].asn == 64501  # 2-byte AS form

    def test_entries_carry_next_hops(self, fixture_paths, fixture_spec):
        dump = load_rib(fixture_paths["rib"])
        routes = dict(fixture_routes(fixture_spec))
        peer0 = {
            e.prefix: e.next_hop for e in dump.entries if e.peer_index == 0
        }
        assert set(peer0) == set(routes)
        for prefix, hop in routes.items():
            assert peer0[prefix] == next_hop_ip(hop)

    def test_edge_prefixes_present(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        lengths = {e.prefix.length for e in dump.entries}
        assert 0 in lengths  # default route record (plen 0)
        assert 32 in lengths  # host route

    def test_gzip_is_sniffed_not_suffix_matched(self, tmp_path):
        # A gzipped file with a lying suffix must still load.
        import gzip

        payload = build_rib_mrt(FixtureSpec(routes=8))
        path = tmp_path / "rib.mrt"  # no .gz suffix
        path.write_bytes(gzip.compress(payload))
        assert load_rib(path).records == load_rib_bytes_records(payload)

    def test_bz2_transparent(self, tmp_path):
        payload = build_rib_mrt(FixtureSpec(routes=8))
        path = tmp_path / "rib.mrt.bz2"
        path.write_bytes(bz2.compress(payload))
        assert load_rib(path).records == load_rib_bytes_records(payload)

    def test_malformed_record_body_is_counted_not_fatal(self, tmp_path):
        # Valid MRT header, subtype RIB_IPV4_UNICAST, nonsense body.
        record = struct.pack(">IHHI", 0, 13, 2, 1) + b"\xff"
        path = tmp_path / "bad.mrt"
        path.write_bytes(record)
        dump = load_rib(path)
        assert dump.counters.skipped == {"malformed": 1}
        assert dump.entries == []

    def test_truncated_header_raises(self, tmp_path):
        path = tmp_path / "trunc.mrt"
        path.write_bytes(b"\x00" * 7)
        with pytest.raises(IngestFormatError, match="truncated MRT header"):
            load_rib(path)

    def test_truncated_body_raises(self, tmp_path):
        path = tmp_path / "trunc.mrt"
        path.write_bytes(struct.pack(">IHHI", 0, 13, 2, 100) + b"\x00" * 10)
        with pytest.raises(IngestFormatError, match="truncated"):
            load_rib(path)

    def test_absurd_length_raises(self, tmp_path):
        path = tmp_path / "junk.mrt"
        path.write_bytes(b"This is not an MRT file, not even close.")
        with pytest.raises(IngestFormatError):
            load_rib(path)


def load_rib_bytes_records(payload):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "plain.mrt"
        path.write_bytes(payload)
        return load_rib(path).records


class TestUpdateDump:
    def test_every_record_accounted(self, fixture_paths):
        dump = load_updates(fixture_paths["updates"])
        assert dump.counters.total == dump.records
        assert dump.counters.parsed == {"bgp4mp-update": 160}

    def test_skip_fodder_reasons(self, fixture_paths):
        dump = load_updates(fixture_paths["updates"])
        assert dump.counters.skipped == {
            "bgp-keepalive": 1,
            "state-change": 1,
            "no-ipv4-content": 1,
            "ospfv2": 1,
        }
        # The IPv6 MP_REACH inside the skipped update is noted.
        assert dump.counters.noted == {"mp-reach-afi-2-safi-1": 1}

    def test_all_generated_updates_survive(self, fixture_paths, fixture_spec):
        dump = load_updates(fixture_paths["updates"])
        assert len(dump.updates) == fixture_spec.updates

    def test_et_records_carry_subsecond_timestamps(self, fixture_paths):
        dump = load_updates(fixture_paths["updates"])
        fractional = [
            u.timestamp for u in dump.updates if u.timestamp % 1.0 != 0.0
        ]
        assert fractional  # BGP4MP_ET microseconds decoded

    def test_withdraws_and_announces_both_present(self, fixture_paths):
        dump = load_updates(fixture_paths["updates"])
        assert any(u.announces for u in dump.updates)
        assert any(u.withdraws for u in dump.updates)

    def test_two_peers_visible(self, fixture_paths):
        dump = load_updates(fixture_paths["updates"])
        peers = {u.peer_ip for u in dump.updates}
        assert peers == {0xC0000201, 0xC0000202}


class TestRecordStream:
    def test_iter_records_offsets_are_monotonic(self, fixture_paths):
        offsets = [r.offset for r in iter_records(fixture_paths["updates"])]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == len(offsets)

    def test_fixtures_are_deterministic(self, fixture_spec):
        assert build_rib_mrt(fixture_spec) == build_rib_mrt(fixture_spec)
        assert build_updates_mrt(fixture_spec) == build_updates_mrt(
            fixture_spec
        )
