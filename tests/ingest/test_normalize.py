"""Normalization: peer selection, hashing, rebasing, policy, accounting."""

import pytest

from repro.ingest import (
    NormalizePolicy,
    filter_consistent_updates,
    is_martian,
    is_martian_address,
    load_pcap,
    load_rib,
    load_updates,
    packets_to_trace,
    port_for_next_hop,
    rib_to_table,
    select_peer,
    updates_to_trace,
)
from repro.net.prefix import Prefix
from repro.workload.updategen import UpdateKind


class TestPortHashing:
    def test_deterministic_and_in_range(self):
        ports = [port_for_next_hop(ip, 24) for ip in range(1000, 1100)]
        assert ports == [port_for_next_hop(ip, 24) for ip in range(1000, 1100)]
        assert all(0 <= port < 24 for port in ports)

    def test_spreads_over_ports(self):
        ports = {port_for_next_hop(ip, 8) for ip in range(64)}
        assert len(ports) > 4


class TestMartians:
    def test_default_route_is_not_martian(self):
        assert not is_martian(Prefix.parse("0.0.0.0/0"))

    def test_bogons_are(self):
        assert is_martian(Prefix.parse("224.1.0.0/16"))
        assert is_martian(Prefix.parse("127.0.0.0/8"))
        assert is_martian_address(0x7F000001)
        assert not is_martian_address(0x08080808)

    def test_rfc1918_is_kept(self):
        assert not is_martian(Prefix.parse("10.0.0.0/8"))


class TestRibToTable:
    def test_accounting_covers_every_entry(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        routes, report = rib_to_table(dump)
        assert report.emitted + report.dropped_total == report.input
        assert report.emitted == len(routes)

    def test_single_peer_view(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        assert select_peer(dump) == 0  # peer 0 holds the majority rows
        _, report = rib_to_table(dump)
        minority = sum(
            1 for e in dump.entries if e.peer_index != 0
        )
        assert report.dropped.get("other-peer") == minority

    def test_default_route_policy(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        kept, _ = rib_to_table(dump)
        assert any(prefix.length == 0 for prefix, _ in kept)
        dropped, report = rib_to_table(
            dump, NormalizePolicy(keep_default_route=False)
        )
        assert all(prefix.length > 0 for prefix, _ in dropped)
        assert report.dropped.get("default-route") == 1

    def test_keep_martians_flag(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        strict, strict_report = rib_to_table(dump)
        loose, _ = rib_to_table(dump, NormalizePolicy(drop_martians=False))
        assert len(loose) == len(strict) + strict_report.dropped.get(
            "martian", 0
        )

    def test_sorted_canonical_order(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        routes, _ = rib_to_table(dump)
        keys = [prefix.sort_key() for prefix, _ in routes]
        assert keys == sorted(keys)


class TestUpdatesToTrace:
    @pytest.fixture()
    def trace_and_report(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        routes, _ = rib_to_table(dump)
        updates = load_updates(fixture_paths["updates"])
        return updates, routes, updates_to_trace(updates, routes)

    def test_accounting(self, trace_and_report):
        _, _, (trace, report) = trace_and_report
        assert report.emitted == len(trace)
        assert report.emitted + report.dropped_total == report.input

    def test_timestamps_rebased_to_zero(self, trace_and_report):
        # The base is the first selected-peer record; the first *emitted*
        # event may come slightly later if that record's events were all
        # dropped, but the trace always starts within the first second.
        _, _, (trace, _) = trace_and_report
        assert 0.0 <= trace[0].timestamp < 1.0
        assert all(m.timestamp >= 0.0 for m in trace)

    def test_time_scale(self, fixture_paths):
        dump = load_rib(fixture_paths["rib"])
        routes, _ = rib_to_table(dump)
        updates = load_updates(fixture_paths["updates"])
        fast, _ = updates_to_trace(
            updates, routes, NormalizePolicy(time_scale=0.5)
        )
        slow, _ = updates_to_trace(updates, routes)
        assert fast[-1].timestamp == pytest.approx(slow[-1].timestamp * 0.5)

    def test_withdraw_consistency(self, trace_and_report):
        updates, routes, (trace, _) = trace_and_report
        # Replaying the trace over the base table never withdraws a
        # prefix that is not live — the generator invariant holds.
        live = {prefix for prefix, _ in routes}
        for message in trace:
            if message.kind is UpdateKind.WITHDRAW:
                assert message.prefix in live
                live.discard(message.prefix)
            else:
                live.add(message.prefix)

    def test_hops_land_in_port_range(self, trace_and_report):
        _, _, (trace, _) = trace_and_report
        policy = NormalizePolicy()
        for message in trace:
            if message.kind is UpdateKind.ANNOUNCE:
                assert 0 <= message.next_hop < policy.port_count


class TestPacketsToTrace:
    def test_martian_destinations_dropped(self, fixture_paths):
        dump = load_pcap(fixture_paths["pcap"])
        addresses, report = packets_to_trace(dump)
        assert report.emitted == len(addresses)
        assert not any(is_martian_address(a) for a in addresses)
        kept_all, _ = packets_to_trace(
            dump, NormalizePolicy(drop_martians=False)
        )
        assert len(kept_all) == len(dump.packets)


class TestFilterConsistentUpdates:
    def test_drops_withdraw_of_unknown(self):
        from repro.workload.updategen import UpdateMessage

        p1 = Prefix.parse("10.0.0.0/8")
        p2 = Prefix.parse("11.0.0.0/8")
        messages = [
            UpdateMessage(UpdateKind.WITHDRAW, p2, None, 0.0),  # unknown
            UpdateMessage(UpdateKind.WITHDRAW, p1, None, 1.0),  # known
            UpdateMessage(UpdateKind.WITHDRAW, p1, None, 2.0),  # now gone
            UpdateMessage(UpdateKind.ANNOUNCE, p2, 3, 3.0),
            UpdateMessage(UpdateKind.WITHDRAW, p2, None, 4.0),  # known again
        ]
        kept = filter_consistent_updates([(p1, 1)], messages)
        assert [(m.kind, m.prefix) for m in kept] == [
            (UpdateKind.WITHDRAW, p1),
            (UpdateKind.ANNOUNCE, p2),
            (UpdateKind.WITHDRAW, p2),
        ]
