"""Shared fixture set for the ingest tests: one deterministic write."""

import pytest

from repro.ingest import FixtureSpec, write_fixture_set


@pytest.fixture(scope="session")
def fixture_spec():
    return FixtureSpec()


@pytest.fixture(scope="session")
def fixture_paths(tmp_path_factory, fixture_spec):
    directory = tmp_path_factory.mktemp("mrt-fixtures")
    return write_fixture_set(directory, fixture_spec)
