"""pcap parser: endianness, VLAN unwrapping, accounting, failure modes."""

import struct

import pytest

from repro.ingest import IngestFormatError, load_pcap


class TestLoadPcap:
    def test_every_record_accounted(self, fixture_paths):
        dump = load_pcap(fixture_paths["pcap"])
        assert dump.counters.total == dump.records
        assert dump.counters.skipped == {
            "arp": 1,
            "ipv6": 1,
            "truncated-frame": 1,
        }

    def test_both_byte_orders_agree(self, fixture_paths):
        little = load_pcap(fixture_paths["pcap"])
        big = load_pcap(fixture_paths["pcap_be"])
        assert not little.big_endian and big.big_endian
        assert [p.dst for p in little.packets] == [p.dst for p in big.packets]

    def test_nanosecond_magic(self, fixture_paths):
        big = load_pcap(fixture_paths["pcap_be"])
        assert big.nanosecond
        little = load_pcap(fixture_paths["pcap"])
        assert not little.nanosecond
        # Same capture, same instants: timestamps agree across formats.
        for a, b in zip(little.packets, big.packets):
            assert a.timestamp == pytest.approx(b.timestamp, abs=1e-6)

    def test_vlan_frames_are_unwrapped(self, fixture_paths, fixture_spec):
        # The fixture tags every 6th frame; all destinations must still
        # land in the trace, so count equals the generator's output.
        dump = load_pcap(fixture_paths["pcap"])
        assert len(dump.packets) == fixture_spec.packets

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "junk.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(IngestFormatError, match="magic"):
            load_pcap(path)

    def test_truncated_global_header_raises(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        path.write_bytes(b"\xa1\xb2\xc3\xd4\x00")
        with pytest.raises(IngestFormatError, match="global header"):
            load_pcap(path)

    def test_non_ethernet_linktype_raises(self, tmp_path):
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 113)
        path = tmp_path / "sll.pcap"
        path.write_bytes(header)
        with pytest.raises(IngestFormatError, match="linux-sll"):
            load_pcap(path)

    def test_truncated_packet_body_raises(self, tmp_path):
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 0, 0, 100, 100) + b"\x00" * 10
        path = tmp_path / "trunc.pcap"
        path.write_bytes(header + record)
        with pytest.raises(IngestFormatError, match="truncated"):
            load_pcap(path)
