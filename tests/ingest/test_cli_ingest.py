"""End-to-end `repro ingest` CLI: fixtures -> rib/updates/pcap -> simulate."""

import gzip

import pytest

from repro.cli import main
from repro.workload.traces import (
    TraceFormatError,
    load_packets,
    load_table,
    load_updates,
)


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("ingest-cli")
    assert main(["ingest", "fixtures", "-o", str(directory / "raw")]) == 0
    return directory


class TestIngestChain:
    def test_rib_to_table(self, workdir, capsys):
        table = workdir / "wl" / "table.txt"
        code = main(
            [
                "ingest",
                "rib",
                str(workdir / "raw" / "rib.mrt.gz"),
                "-o",
                str(table),
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "100% accounted" in out
        routes = load_table(table)
        assert routes
        assert all(0 <= hop < 24 for _, hop in routes)

    def test_updates_to_trace(self, workdir, capsys):
        self.test_rib_to_table(workdir, capsys)
        trace = workdir / "wl" / "updates.txt"
        code = main(
            [
                "ingest",
                "updates",
                str(workdir / "raw" / "updates.mrt"),
                "--table",
                str(workdir / "wl" / "table.txt"),
                "-o",
                str(trace),
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "100% accounted" in out
        assert "updates_per_second" in out or "updates/s" in out
        assert load_updates(trace)

    def test_pcap_to_packets(self, workdir, capsys):
        packets = workdir / "wl" / "packets.txt"
        code = main(
            [
                "ingest",
                "pcap",
                str(workdir / "raw" / "trace.pcap"),
                "-o",
                str(packets),
                "--stats",
            ]
        )
        assert code == 0
        assert "100% accounted" in capsys.readouterr().out
        assert load_packets(packets)

    def test_simulate_over_ingested_workload(self, workdir, capsys):
        self.test_updates_to_trace(workdir, capsys)
        self.test_pcap_to_packets(workdir, capsys)
        code = main(
            [
                "simulate",
                "--table",
                str(workdir / "wl" / "table.txt"),
                "--updates",
                str(workdir / "wl" / "updates.txt"),
                "--packets",
                str(workdir / "wl" / "packets.txt"),
                "--count",
                "500",
                "--chips",
                "2",
            ]
        )
        assert code == 0

    def test_gzip_output_suffix(self, workdir, tmp_path):
        table = tmp_path / "table.txt.gz"
        code = main(
            [
                "ingest",
                "rib",
                str(workdir / "raw" / "rib.mrt.gz"),
                "-o",
                str(table),
            ]
        )
        assert code == 0
        with gzip.open(table, "rt") as handle:
            assert handle.readline().strip()
        plain = load_table(workdir / "wl" / "table.txt")
        assert load_table(table) == plain


class TestIngestErrors:
    def test_corrupt_mrt_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.mrt"
        bad.write_bytes(b"not an mrt stream at all, sorry")
        code = main(
            ["ingest", "rib", str(bad), "-o", str(tmp_path / "t.txt")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_pcap_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.pcap"
        bad.write_bytes(b"\x00" * 64)
        code = main(
            ["ingest", "pcap", str(bad), "-o", str(tmp_path / "p.txt")]
        )
        assert code == 2
        assert "magic" in capsys.readouterr().err

    def test_missing_input_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "ingest",
                "rib",
                str(tmp_path / "nope.mrt"),
                "-o",
                str(tmp_path / "t.txt"),
            ]
        )
        assert code == 2

    def test_fetch_without_output_or_url_only_exits_2(self, capsys):
        code = main(
            ["ingest", "fetch", "--when", "20260107.0800"]
        )
        assert code == 2

    def test_fetch_url_only(self, capsys):
        code = main(
            [
                "ingest",
                "fetch",
                "--when",
                "20260107.0800",
                "--kind",
                "rib",
                "--url-only",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bview.20260107.0800.gz" in out


class TestTraceLineNumbers:
    def test_bad_table_line_reports_path_and_line(self, tmp_path):
        path = tmp_path / "table.txt"
        path.write_text("10.0.0.0/8 3\n192.168.0.0/16 nope\n")
        with pytest.raises(TraceFormatError, match=r"table\.txt:2"):
            load_table(path)

    def test_cli_surfaces_line_number(self, tmp_path, capsys):
        path = tmp_path / "table.txt"
        path.write_text("10.0.0.0/8 3\nbogus line here\n")
        code = main(["compress", "--table", str(path), "--mode", "dontcare"])
        assert code == 2
        err = capsys.readouterr().err
        assert "table.txt:2" in err

    def test_gzip_table_loads(self, tmp_path):
        path = tmp_path / "table.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("10.0.0.0/8 3\n0.0.0.0/0 1\n")
        routes = load_table(path)
        assert len(routes) == 2
