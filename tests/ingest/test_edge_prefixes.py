"""Edge prefixes (0.0.0.0/0 and /32) flowing ingest -> table -> engine.

The fixture RIB deliberately carries both a default route and a /32
host route; this module proves they survive every hop of the pipeline:
MRT parse, normalization, trace round-trip, ONRTC compression, and the
parallel lookup engine.
"""

import pytest

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.core.system import ClueSystem
from repro.engine.builders import build_clue_engine
from repro.engine.simulator import EngineConfig
from repro.ingest import load_rib, rib_to_table
from repro.net.prefix import Prefix, parse_address
from repro.trie.trie import BinaryTrie
from repro.workload.traces import load_table, save_table


@pytest.fixture(scope="module")
def ingested_routes(tmp_path_factory):
    from repro.ingest import FixtureSpec, write_fixture_set

    directory = tmp_path_factory.mktemp("edge-fixtures")
    paths = write_fixture_set(directory, FixtureSpec())
    routes, _ = rib_to_table(load_rib(paths["rib"]))
    return routes


PROBES = [
    parse_address("0.0.0.0"),
    parse_address("255.255.255.255"),
    parse_address("10.99.99.99"),  # the fixture /32 host route
    parse_address("10.99.99.98"),  # one off the host route
    parse_address("8.8.8.8"),  # default-route territory
    parse_address("192.0.2.77"),
]


class TestIngestedEdgeRoutes:
    def test_edge_prefixes_survive_normalization(self, ingested_routes):
        lengths = {prefix.length for prefix, _ in ingested_routes}
        assert 0 in lengths
        assert 32 in lengths

    def test_table_roundtrip_preserves_edges(self, ingested_routes, tmp_path):
        path = tmp_path / "table.txt"
        save_table(ingested_routes, path)
        assert load_table(path) == list(ingested_routes)

    def test_onrtc_preserves_edge_semantics(self, ingested_routes):
        reference = BinaryTrie.from_routes(ingested_routes)
        compressed = compress(reference, CompressionMode.DONT_CARE)
        table = BinaryTrie.from_routes(sorted(
            compressed.items(), key=lambda r: r[0].sort_key()
        ))
        for address in PROBES:
            assert table.lookup(address) == reference.lookup(address)

    def test_engine_completes_all_probes(self, ingested_routes):
        built = build_clue_engine(
            ingested_routes, EngineConfig(chip_count=2)
        )
        stats = built.engine.run(iter(PROBES), len(PROBES))
        assert stats.completions == len(PROBES)

    def test_system_lookups_match_reference(self, ingested_routes):
        reference = BinaryTrie.from_routes(ingested_routes)
        system = ClueSystem(ingested_routes)
        answers = system.process_lookups(PROBES)
        assert answers == [reference.lookup(a) for a in PROBES]


class TestMinimalEdgeTable:
    """The pathological two-route table: just /0 and a /32."""

    ROUTES = [
        (Prefix.parse("0.0.0.0/0"), 1),
        (Prefix.parse("10.99.99.99/32"), 2),
    ]

    def test_system_over_minimal_table(self):
        system = ClueSystem(self.ROUTES)
        host = parse_address("10.99.99.99")
        assert system.process_lookups([host]) == [2]
        assert system.process_lookups([host - 1, host + 1]) == [1, 1]
        assert system.process_lookups(
            [parse_address("0.0.0.0"), parse_address("255.255.255.255")]
        ) == [1, 1]

    def test_trace_roundtrip_of_minimal_table(self, tmp_path):
        path = tmp_path / "edge.txt"
        save_table(self.ROUTES, path)
        assert load_table(path) == self.ROUTES
