"""Integration tests asserting the paper's headline claims (scaled down).

These are the end-to-end checks behind EXPERIMENTS.md: each test mirrors
one claim from the abstract/Section V and asserts its *shape* (who wins,
by roughly what factor) at laptop scale.
"""

import pytest

from repro.analysis.speedup import required_hit_rate, worst_case_speedup
from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compression_report
from repro.engine.builders import (
    build_clpl_engine,
    build_clue_engine,
    measure_partition_load,
)
from repro.engine.simulator import EngineConfig
from repro.trie.trie import BinaryTrie
from repro.update.pipeline import (
    ClplUpdatePipeline,
    ClueUpdatePipeline,
    default_dred_banks,
)
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateParameters


@pytest.fixture(scope="module")
def rib():
    return generate_rib(17, RibParameters(size=6_000))


class TestClaimCompression:
    def test_clue_needs_fewer_tcam_entries(self, rib):
        """Abstract: 'CLUE only needs about 71% TCAM entries'."""
        config = EngineConfig(chip_count=4)
        clue = build_clue_engine(rib, config)
        clpl = build_clpl_engine(rib, config)
        ratio = clue.total_tcam_entries / clpl.total_tcam_entries
        assert ratio < 0.9


class TestClaimUpdateTime:
    def test_data_plane_update_fraction(self, rib):
        """Abstract: '4.29% update time' (TTF2+TTF3 vs CLPL).

        With our honest entry-diff accounting CLUE lands below ~25% of
        CLPL rather than the paper's idealised 4.29%; the direction and
        order of magnitude are the reproduced claim (see EXPERIMENTS.md).
        """
        mix = UpdateParameters(
            modify_fraction=0.0,
            new_prefix_fraction=0.5,
            withdraw_fraction=0.5,
        )
        clue = ClueUpdatePipeline(
            rib, dred_banks=default_dred_banks(4, 512, True)
        )
        clpl = ClplUpdatePipeline(
            rib, dred_banks=default_dred_banks(4, 512, False)
        )
        messages = UpdateGenerator(rib, seed=21, parameters=mix).take(500)
        clue_report = clue.run(messages)
        clpl_report = clpl.run(messages)
        fraction = clue_report.ttf23().mean_us / clpl_report.ttf23().mean_us
        assert fraction < 0.25


class TestClaimSpeedupBound:
    def test_bound_holds_in_valid_domain(self, rib):
        """Section III-D: t ≥ (N−1)h + 1 whenever h ≥ (N−2)/(N−1),
        even under the adversarial partition-to-chip mapping."""
        config = EngineConfig(chip_count=4, dred_capacity=1024)
        probe = build_clue_engine(rib, config)
        sample = TrafficGenerator(rib, seed=5).take(20_000)
        loads = measure_partition_load(
            probe.index, sample, probe.partition_result.count
        )
        for dred_capacity in (256, 512, 1024):
            adversarial = build_clue_engine(
                rib,
                EngineConfig(chip_count=4, dred_capacity=dred_capacity),
                partition_loads=loads,
            )
            stats = adversarial.engine.run(
                TrafficGenerator(rib, seed=5), 30_000
            )
            hit_rate = stats.dred_hit_rate
            if hit_rate >= required_hit_rate(4):
                floor = worst_case_speedup(4, hit_rate)
                assert stats.speedup(4) >= floor - 0.05, (
                    hit_rate,
                    stats.speedup(4),
                )

    def test_load_balancing_evens_adversarial_mapping(self, rib):
        """Figure 15: the DRed mechanism flattens an extremely uneven
        per-chip workload."""
        config = EngineConfig(chip_count=4)
        probe = build_clue_engine(rib, config)
        sample = TrafficGenerator(rib, seed=6).take(20_000)
        loads = measure_partition_load(
            probe.index, sample, probe.partition_result.count
        )
        original_by_chip = [0.0] * 4
        from repro.engine.builders import map_partitions_to_chips

        mapping = map_partitions_to_chips(len(loads), 4, loads)
        for partition, load in enumerate(loads):
            original_by_chip[mapping[partition]] += load
        total = sum(original_by_chip)
        original_shares = [load / total for load in original_by_chip]
        assert max(original_shares) > 0.4  # genuinely adversarial

        adversarial = build_clue_engine(rib, config, partition_loads=loads)
        stats = adversarial.engine.run(TrafficGenerator(rib, seed=6), 30_000)
        balanced_shares = stats.chip_load_shares()
        assert max(balanced_shares) < 0.30


class TestClaimDredReduction:
    def test_same_hit_rate_with_three_quarters_dred(self, rib):
        """Abstract: '3/4 dynamic redundant prefixes for the same
        throughput when using four TCAMs'."""
        clpl = build_clpl_engine(
            rib, EngineConfig(chip_count=4, dred_capacity=512)
        )
        clue = build_clue_engine(
            rib, EngineConfig(chip_count=4, dred_capacity=384)
        )
        clpl_stats = clpl.engine.run(TrafficGenerator(rib, seed=7), 30_000)
        clue_stats = clue.engine.run(TrafficGenerator(rib, seed=7), 30_000)
        assert (
            clue_stats.dred_hit_rate >= clpl_stats.dred_hit_rate - 0.02
        )

    def test_no_control_plane_for_dred_maintenance(self, rib):
        """Abstract: 'frequent interactions between control plane and data
        plane caused by redundant prefixes update can be avoided'."""
        config = EngineConfig(chip_count=4)
        clue = build_clue_engine(rib, config)
        clpl = build_clpl_engine(rib, config)
        clue_stats = clue.engine.run(TrafficGenerator(rib, seed=8), 10_000)
        clpl_stats = clpl.engine.run(TrafficGenerator(rib, seed=8), 10_000)
        assert clue_stats.control_plane_interactions == 0
        assert clpl_stats.control_plane_interactions > 0


class TestClaimCompressionFigure8:
    def test_average_ratio_near_paper(self):
        """Figure 8: compressed size ≈ 71% of original on average."""
        ratios = []
        for seed in (101, 103, 104):
            trie = BinaryTrie.from_routes(
                generate_rib(seed, RibParameters(size=12_000))
            )
            ratios.append(
                compression_report(trie, CompressionMode.DONT_CARE).ratio
            )
        mean_ratio = sum(ratios) / len(ratios)
        assert 0.55 <= mean_ratio <= 0.85
