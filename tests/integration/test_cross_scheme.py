"""Cross-scheme integration: four engines, one truth.

All four parallel-lookup schemes answer identical traffic over the same
routing table; every completed lookup must match the reference LPM, and
the schemes must agree with each other wherever the don't-care contract
allows comparison.
"""

import pytest

from repro.engine.builders import (
    build_clpl_engine,
    build_clue_engine,
    build_round_robin_engine,
    build_slpl_engine,
)
from repro.engine.simulator import EngineConfig
from repro.trie.trie import BinaryTrie
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator

PACKETS = 8_000


@pytest.fixture(scope="module")
def shootout():
    routes = generate_rib(33, RibParameters(size=4_000))
    reference = BinaryTrie.from_routes(routes)
    config = EngineConfig(chip_count=4)
    training = TrafficGenerator(routes, seed=40).take(8_000)
    engines = {
        "clue": build_clue_engine(routes, config),
        "clpl": build_clpl_engine(routes, config),
        "slpl": build_slpl_engine(routes, training, config),
        "rr": build_round_robin_engine(routes, config),
    }
    answers = {}
    for name, built in engines.items():
        built.engine.run(TrafficGenerator(routes, seed=41), PACKETS)
        answers[name] = {
            completion.tag: completion.next_hop
            for completion in built.engine.reorder.released
        }
    return routes, reference, engines, answers


class TestAgreement:
    def test_everyone_answers_everything(self, shootout):
        _, _, _, answers = shootout
        for name, table in answers.items():
            assert len(table) == PACKETS, name
            assert set(table) == set(range(PACKETS)), name

    def test_all_schemes_match_reference(self, shootout):
        routes, reference, engines, _ = shootout
        for name, built in engines.items():
            covered_only = name == "clue"
            assert built.engine.verify_completions(
                covered_only=covered_only
            ), name

    def test_schemes_agree_pairwise_on_covered_traffic(self, shootout):
        _, reference, engines, answers = shootout
        clue_engine = engines["clue"].engine
        # Addresses per tag from the released completions of one engine.
        address_of = {
            completion.tag: completion.address
            for completion in clue_engine.reorder.released
        }
        baseline = answers["rr"]
        for name in ("clue", "clpl", "slpl"):
            disagreements = 0
            for tag, hop in answers[name].items():
                expected = baseline[tag]
                if name == "clue" and reference.lookup(address_of[tag]) is None:
                    continue  # don't-care space: anything goes
                if hop != expected:
                    disagreements += 1
            assert disagreements == 0, name

    def test_tcam_cost_ordering(self, shootout):
        _, _, engines, _ = shootout
        assert (
            engines["clue"].total_tcam_entries
            < engines["clpl"].total_tcam_entries
            <= engines["slpl"].total_tcam_entries
            < engines["rr"].total_tcam_entries
        )
