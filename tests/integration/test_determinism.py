"""End-to-end determinism: same seeds, same everything.

Reproducibility is the whole point of a reproduction package: every
generator is seed-driven and every algorithm is deterministic, so complete
experiments must replay bit-for-bit.
"""

from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator


def run_experiment():
    routes = generate_rib(77, RibParameters(size=2_000))
    system = ClueSystem(
        routes,
        SystemConfig(engine=EngineConfig(chip_count=4, dred_capacity=256)),
    )
    stats = system.process_traffic(TrafficGenerator(routes, seed=7), 6_000)
    samples = [
        system.apply_update(message)
        for message in UpdateGenerator(routes, seed=8).take(300)
    ]
    return {
        "compression": system.compression_report().compressed_entries,
        "cycles": stats.cycles,
        "completions": stats.completions,
        "hit_rate": stats.dred_hit_rate,
        "diverted": stats.diverted,
        "loads": tuple(stats.per_chip_lookups),
        "ttf_total": sum(sample.total_us for sample in samples),
        "table": tuple(
            sorted(
                (str(prefix), hop)
                for prefix, hop in system.pipeline.trie_stage.table.table.items()
            )
        ),
        "hops": tuple(
            completion.next_hop
            for completion in system.engine.reorder.released[:500]
        ),
    }


def test_full_experiment_replays_identically():
    first = run_experiment()
    second = run_experiment()
    assert first == second
