"""The invariant-oracle layer, judged against hand-built evidence."""

import pytest

from repro.campaign.oracles import (
    FAIL,
    ORACLE_NAMES,
    PASS,
    SKIP,
    CellEvidence,
    OracleVerdict,
    judge,
)
from repro.campaign.spec import Cell, CellBudget
from repro.persist.manager import StorageAudit
from repro.trie.trie import BinaryTrie
from repro.workload.ribgen import RibParameters, generate_rib

ROUTES = generate_rib(3, RibParameters(size=120))


def _cell(topology="inproc", fault="none"):
    return Cell(
        workload="fig15",
        fault=fault,
        backend="fast",
        topology=topology,
        seed=5,
        budget=CellBudget(sample_addresses=64),
    )


def _evidence(**kwargs):
    reference = kwargs.pop("reference", BinaryTrie.from_routes(ROUTES))

    def honest_lookup(addresses):
        return [reference.lookup(address) for address in addresses]

    defaults = dict(
        cell=_cell(),
        reference=reference,
        lookup_fn=honest_lookup,
        acked_prefixes=[(ROUTES[0][0], ROUTES[0][1])],
        acked_updates=1,
    )
    defaults.update(kwargs)
    return CellEvidence(**defaults)


def _verdict(verdicts, name):
    return next(v for v in verdicts if v.name == name)


def test_every_oracle_reports_exactly_once():
    verdicts = judge(_evidence())
    assert [v.name for v in verdicts] == list(ORACLE_NAMES)


def test_honest_data_path_passes_differential_oracles():
    verdicts = judge(_evidence())
    assert _verdict(verdicts, "zero-acked-loss").status == PASS
    assert _verdict(verdicts, "lpm-equivalence").status == PASS


def test_lying_data_path_fails_lpm_equivalence():
    reference = BinaryTrie.from_routes(ROUTES)

    def liar(addresses):
        return [
            None if reference.lookup(a) is not None else 1 for a in addresses
        ]

    verdicts = judge(_evidence(lookup_fn=liar))
    verdict = _verdict(verdicts, "lpm-equivalence")
    assert verdict.status == FAIL
    assert "reference trie says" in verdict.detail


def test_lost_acked_update_is_named():
    reference = BinaryTrie.from_routes(ROUTES)
    prefix, hop = ROUTES[0]

    def drops_one(addresses):
        return [
            (None if address == prefix.network else reference.lookup(address))
            for address in addresses
        ]

    evidence = _evidence(
        lookup_fn=drops_one, acked_prefixes=[(prefix, hop)]
    )
    verdict = _verdict(judge(evidence), "zero-acked-loss")
    assert verdict.status == FAIL
    assert str(prefix) in verdict.detail


def test_uncovered_space_is_indeterminate_not_a_failure():
    # A withdrawn prefix nothing covers: reference says None, and the
    # compressed table may answer anything (don't-care merging).
    reference = BinaryTrie.from_routes(ROUTES)
    prefix = ROUTES[0][0]
    reference.remove_route(prefix)

    def overapproximates(addresses):
        return [reference.lookup(a) if reference.lookup(a) is not None else 7
                for a in addresses]

    evidence = _evidence(
        reference=reference,
        lookup_fn=overapproximates,
        acked_prefixes=[(prefix, None)],
    )
    verdict = _verdict(judge(evidence), "zero-acked-loss")
    assert verdict.status == PASS
    assert "indeterminate" in verdict.detail


def test_external_updates_switch_differential_oracles_to_skip():
    verdicts = judge(_evidence(external_updates=True))
    for name in ("zero-acked-loss", "lpm-equivalence"):
        verdict = _verdict(verdicts, name)
        assert verdict.status == SKIP
        assert "outside the acked stream" in verdict.detail


def test_replay_oracle_skips_without_a_journal():
    verdict = _verdict(judge(_evidence()), "replay-fingerprint")
    assert verdict.status == SKIP
    assert "no journal" in verdict.detail


def test_replay_mismatch_fails_with_both_fingerprints():
    evidence = _evidence(
        cell=_cell(topology="inproc-durable"),
        replay=("a" * 64, "b" * 64),
    )
    verdict = _verdict(judge(evidence), "replay-fingerprint")
    assert verdict.status == FAIL
    assert "aaaa" in verdict.detail and "bbbb" in verdict.detail


def test_replay_match_passes():
    evidence = _evidence(
        cell=_cell(topology="inproc-durable"),
        replay=("c" * 64, "c" * 64),
    )
    assert _verdict(judge(evidence), "replay-fingerprint").status == PASS


def test_storage_audit_failure_names_the_shard():
    evidence = _evidence(
        cell=_cell(topology="serve-2"),
        storage_audits=[
            StorageAudit(journal_records=5),
            StorageAudit(problems=["journal unreadable: boom"]),
        ],
    )
    verdict = _verdict(judge(evidence), "storage-audit")
    assert verdict.status == FAIL
    assert "shard 1" in verdict.detail
    assert "journal unreadable" in verdict.detail


def test_engine_oracles_skip_for_subprocess_cells():
    verdicts = judge(_evidence(systems=[]))
    for name in ("dred-exclusion", "chip-audit", "state-audit"):
        assert _verdict(verdicts, name).status == SKIP


def test_prechecked_verdicts_override_oracles():
    injected = OracleVerdict("chip-audit", FAIL, "established mid-flight")
    verdicts = judge(_evidence(prechecked={"chip-audit": injected}))
    assert _verdict(verdicts, "chip-audit") is injected


def test_verdict_ok_semantics():
    assert OracleVerdict("x", PASS).ok
    assert OracleVerdict("x", SKIP).ok, "a skip is not a failure"
    assert not OracleVerdict("x", FAIL).ok
