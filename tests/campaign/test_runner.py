"""Cell executors and the campaign driver (no subprocess topologies —
the ha executor is exercised by the committed smoke subset in CI)."""

import pytest

from repro.campaign.report import render_markdown, write_json
from repro.campaign.runner import execute_cell, run_campaign
from repro.campaign.spec import Cell, CellBudget, spec_from_dict

BUDGET = CellBudget(
    packets=400, updates=48, batch_size=12, sample_addresses=96, rib_size=200
)


def _cell(topology="inproc", fault="none", workload="fig15", backend="fast"):
    return Cell(
        workload=workload,
        fault=fault,
        backend=backend,
        topology=topology,
        seed=17,
        budget=BUDGET,
    )


def test_inproc_cell_passes_all_applicable_oracles(tmp_path):
    result = execute_cell(_cell(), tmp_path)
    assert result.ok, result.as_dict()
    statuses = {v.name: v.status for v in result.verdicts}
    assert statuses["zero-acked-loss"] == "pass"
    assert statuses["replay-fingerprint"] == "skip"
    assert result.acked_updates > 0


def test_durable_cell_checks_replay_and_storage(tmp_path):
    result = execute_cell(_cell(topology="inproc-durable"), tmp_path)
    assert result.ok, result.as_dict()
    statuses = {v.name: v.status for v in result.verdicts}
    assert statuses["replay-fingerprint"] == "pass"
    assert statuses["storage-audit"] == "pass"


def test_corrupt_silent_cell_fails_naming_chip_audit(tmp_path):
    result = execute_cell(_cell(fault="corrupt-silent"), tmp_path)
    assert not result.ok
    assert "chip-audit" in result.failed_oracles
    verdict = next(v for v in result.verdicts if v.name == "chip-audit")
    assert "drifted" in verdict.detail


def test_corrupt_with_healing_audit_passes(tmp_path):
    result = execute_cell(_cell(fault="corrupt"), tmp_path)
    assert result.ok, result.as_dict()


def test_storm_fault_skips_differential_oracles(tmp_path):
    result = execute_cell(_cell(fault="storm", workload="storm"), tmp_path)
    assert result.ok, result.as_dict()
    statuses = {v.name: v.status for v in result.verdicts}
    assert statuses["zero-acked-loss"] == "skip"
    assert statuses["dred-exclusion"] == "pass"


def test_serve_cell_runs_a_real_server(tmp_path):
    result = execute_cell(_cell(topology="serve-2"), tmp_path)
    assert result.ok, result.as_dict()
    statuses = {v.name: v.status for v in result.verdicts}
    assert statuses["lpm-equivalence"] == "pass"
    assert statuses["replay-fingerprint"] == "pass"
    assert statuses["storage-audit"] == "pass"


def test_executor_errors_are_captured_not_raised(tmp_path, monkeypatch):
    from repro.campaign import runner

    def boom(cell, workdir):
        raise RuntimeError("executor exploded")

    monkeypatch.setitem(runner._EXECUTORS, "inproc", boom)
    result = execute_cell(_cell(), tmp_path)
    assert not result.ok
    assert "executor exploded" in result.error
    assert result.repro


def test_cells_are_reproducible(tmp_path):
    first = execute_cell(_cell(topology="inproc-durable"), tmp_path / "a")
    second = execute_cell(_cell(topology="inproc-durable"), tmp_path / "b")
    assert first.ok and second.ok
    assert first.acked_updates == second.acked_updates
    assert [v.detail for v in first.verdicts] == [
        v.detail for v in second.verdicts
    ]


def test_run_campaign_aggregates_and_reports(tmp_path):
    spec = spec_from_dict(
        {
            "campaign": {"name": "mini", "seed": 3},
            "budget": {
                "packets": 300, "updates": 36, "batch_size": 12,
                "sample_addresses": 64, "rib_size": 150,
            },
            "matrix": {
                "workloads": ["fig15"],
                "faults": ["none", "corrupt-silent", "kill-primary"],
                "topologies": ["inproc"],
            },
        }
    )
    lines = []
    campaign = run_campaign(
        spec, spec_path="mini.toml", workdir=tmp_path, log=lines.append
    )
    assert len(campaign.results) == 2
    assert len(campaign.excluded) == 1  # kill-primary needs ha
    assert not campaign.ok
    assert [r.ok for r in campaign.results] == [True, False]
    assert any("corrupt-silent" in line for line in lines)

    # JSON artifact round-trips.
    out = tmp_path / "campaign.json"
    write_json(campaign, out)
    import json

    data = json.loads(out.read_text())
    assert data["campaign"] == "mini"
    assert data["failed_cells"] == 1
    assert data["results"][1]["failed_oracles"] == [
        "chip-audit", "state-audit",
    ]
    assert "--cells" in data["results"][1]["repro"]

    # Markdown names the failure and the repro command.
    markdown = render_markdown(campaign)
    assert "**FAIL**" in markdown
    assert "chip-audit" in markdown
    assert "repro-clue campaign --spec mini.toml" in markdown
    assert "Structurally excluded" in markdown
