"""CLI contract of ``repro campaign``: exit codes and error wording.

The convention the campaign-smoke CI job scripts against:

* ``0`` — every executed cell passed its oracles;
* ``1`` — at least one cell failed (operational failure, worth a look);
* ``2`` — the invocation itself is wrong (bad spec, unknown subset),
  reported as one ``error:`` line on stderr, never a traceback.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

PASSING_SPEC = {
    "campaign": {"name": "cli-pass", "seed": 3},
    "budget": {
        "packets": 300,
        "updates": 36,
        "batch_size": 12,
        "sample_addresses": 64,
        "rib_size": 150,
    },
    "matrix": {"workloads": ["fig15"], "topologies": ["inproc"]},
}


def _spec(tmp_path, data, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data), encoding="utf-8")
    return str(path)


def test_all_pass_exits_zero(tmp_path, capsys):
    code = main(["campaign", "--spec", _spec(tmp_path, PASSING_SPEC)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1/1 cells ok" in out
    assert "**PASS**" in out


def test_failed_invariant_exits_one_and_names_the_oracle(tmp_path, capsys):
    data = dict(PASSING_SPEC)
    data["matrix"] = {
        "workloads": ["fig15"],
        "faults": ["corrupt-silent"],
        "topologies": ["inproc"],
    }
    code = main(["campaign", "--spec", _spec(tmp_path, data)])
    out = capsys.readouterr().out
    assert code == 1
    assert "chip-audit" in out
    assert "repro-clue campaign --spec" in out  # repro command line


def test_missing_spec_exits_two(tmp_path, capsys):
    code = main(["campaign", "--spec", str(tmp_path / "absent.toml")])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error: cannot read spec")


def test_unknown_axis_value_exits_two_with_known_list(tmp_path, capsys):
    data = {"matrix": {"workloads": ["warp-speed"]}}
    code = main(["campaign", "--spec", _spec(tmp_path, data)])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err
    assert "'warp-speed'" in err
    assert "known: fig15" in err


def test_unknown_subset_exits_two(tmp_path, capsys):
    code = main(
        [
            "campaign",
            "--spec", _spec(tmp_path, PASSING_SPEC),
            "--subset", "nope",
        ]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown subset 'nope'" in err


def test_unmatched_cell_pattern_exits_two(tmp_path, capsys):
    code = main(
        [
            "campaign",
            "--spec", _spec(tmp_path, PASSING_SPEC),
            "--cells", "zz/*",
        ]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "match nothing" in err


def test_malformed_toml_exits_two_with_line_number(tmp_path, capsys):
    path = tmp_path / "bad.toml"
    path.write_text("[campaign\nseed = 1\n", encoding="utf-8")
    code = main(["campaign", "--spec", str(path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


def test_list_mode_prints_cells_and_runs_nothing(tmp_path, capsys):
    data = dict(PASSING_SPEC)
    data["matrix"] = {
        "workloads": ["fig15"],
        "faults": ["none", "kill-primary"],
        "topologies": ["inproc"],
    }
    code = main(["campaign", "--spec", _spec(tmp_path, data), "--list"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fig15/none/fast/inproc" in out
    assert "# excluded fig15/kill-primary/fast/inproc" in out
    assert "# 1 cells, 1 excluded" in out


def test_output_artifacts_are_written(tmp_path, capsys):
    json_out = tmp_path / "campaign.json"
    md_out = tmp_path / "campaign.md"
    code = main(
        [
            "campaign",
            "--spec", _spec(tmp_path, PASSING_SPEC),
            "-o", str(json_out),
            "--markdown", str(md_out),
        ]
    )
    capsys.readouterr()
    assert code == 0
    data = json.loads(json_out.read_text())
    assert data["ok"] is True
    assert data["cells"] == 1
    assert "# Campaign `cli-pass`" in md_out.read_text()


def test_committed_smoke_spec_expands_enough_cells(capsys):
    code = main(
        ["campaign", "--spec", str(EXAMPLES / "campaign_smoke.toml"), "--list"]
    )
    out = capsys.readouterr().out
    assert code == 0
    cells = [line for line in out.splitlines() if not line.startswith("#")]
    assert len(cells) >= 70, "acceptance: smoke spec must expand ≥70 cells"
    assert any(cell.endswith("/serve-2proc") for cell in cells)
    excluded = [line for line in out.splitlines() if "# excluded" in line]
    assert excluded, "the matrix should demonstrate structural exclusion"


def test_committed_smoke_subset_is_at_most_ten_cells(capsys):
    code = main(
        [
            "campaign",
            "--spec", str(EXAMPLES / "campaign_smoke.toml"),
            "--subset", "smoke",
            "--list",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    cells = [line for line in out.splitlines() if not line.startswith("#")]
    assert 0 < len(cells) <= 10
    topologies = {cell.rsplit("/", 1)[1] for cell in cells}
    assert "ha" in topologies, "smoke must exercise the subprocess cell"
    assert "serve-2" in topologies
    assert "serve-2proc" in topologies, "smoke must cover the process plane"
    assert "reshard" in topologies, "smoke must cover the migration drill"


def test_committed_broken_spec_fails_on_chip_audit(capsys):
    code = main(
        ["campaign", "--spec", str(EXAMPLES / "campaign_broken.toml")]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "chip-audit" in out
