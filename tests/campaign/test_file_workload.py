"""`file:` workloads in campaign cells: provenance, exclusion, validation."""

import json

import pytest

from repro.campaign.report import render_markdown, write_json
from repro.campaign.runner import execute_cell, run_campaign
from repro.campaign.spec import Cell, CellBudget, SpecError, spec_from_dict
from repro.cli import main
from repro.workload import (
    FileWorkload,
    file_workload,
    is_file_workload,
    resolve_workload,
)

BUDGET = CellBudget(
    packets=300, updates=32, batch_size=12, sample_addresses=64, rib_size=200
)


@pytest.fixture(scope="module")
def workload_dir(tmp_path_factory):
    """A fully ingested fixture workload directory (table+updates+packets)."""
    root = tmp_path_factory.mktemp("file-workload")
    raw = root / "raw"
    wl = root / "wl"
    assert main(["ingest", "fixtures", "-o", str(raw)]) == 0
    assert (
        main(
            [
                "ingest",
                "rib",
                str(raw / "rib.mrt.gz"),
                "-o",
                str(wl / "table.txt"),
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "ingest",
                "updates",
                str(raw / "updates.mrt"),
                "--table",
                str(wl / "table.txt"),
                "-o",
                str(wl / "updates.txt"),
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "ingest",
                "pcap",
                str(raw / "trace.pcap"),
                "-o",
                str(wl / "packets.txt"),
            ]
        )
        == 0
    )
    return wl


def _cell(workload, topology="inproc", fault="none", backend="fast"):
    return Cell(
        workload=workload,
        fault=fault,
        backend=backend,
        topology=topology,
        seed=17,
        budget=BUDGET,
    )


class TestFileWorkloadResolution:
    def test_resolve_and_validate(self, workload_dir):
        name = f"file:{workload_dir}"
        assert is_file_workload(name)
        workload = resolve_workload(name)
        assert isinstance(workload, FileWorkload)
        workload.validate()
        assert workload.load_routes()
        assert workload.load_updates()
        assert workload.load_packets()

    def test_provenance_has_hashes(self, workload_dir):
        provenance = file_workload(f"file:{workload_dir}").provenance()
        assert set(provenance) == {"table", "updates", "packets"}
        for record in provenance.values():
            assert len(record["sha256"]) == 64
            assert record["bytes"] > 0

    def test_missing_table_is_an_error(self, tmp_path):
        workload = file_workload(f"file:{tmp_path}")
        with pytest.raises(ValueError, match="ingest rib"):
            workload.validate()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            file_workload("file:")


class TestFileWorkloadCells:
    def test_inproc_cell_passes(self, workload_dir, tmp_path):
        result = execute_cell(_cell(f"file:{workload_dir}"), tmp_path)
        assert result.ok, result.as_dict()
        assert result.workload_provenance is not None
        assert "table" in result.workload_provenance

    def test_serve_cell_passes_with_provenance(self, workload_dir, tmp_path):
        result = execute_cell(
            _cell(f"file:{workload_dir}", topology="serve-1"), tmp_path
        )
        assert result.ok, result.as_dict()
        assert result.workload_provenance["table"]["sha256"]

    def test_registry_cells_have_no_provenance(self, tmp_path):
        result = execute_cell(_cell("fig15"), tmp_path)
        assert result.ok, result.as_dict()
        assert result.workload_provenance is None


class TestFileWorkloadSpec:
    def _spec_dict(self, workload, topologies=("inproc",)):
        return {
            "campaign": {"name": "file-smoke", "seed": 5},
            "budget": {
                "packets": 300,
                "updates": 32,
                "batch_size": 12,
                "sample_addresses": 64,
                "rib_size": 200,
            },
            "matrix": {
                "workloads": [workload],
                "faults": ["none"],
                "backends": ["fast"],
                "topologies": list(topologies),
            },
        }

    def test_spec_validates_file_workload(self, workload_dir):
        spec = spec_from_dict(self._spec_dict(f"file:{workload_dir}"))
        selected, excluded = spec.expand()
        assert len(selected) == 1 and not excluded

    def test_spec_rejects_missing_directory(self, tmp_path):
        with pytest.raises(SpecError):
            spec_from_dict(self._spec_dict(f"file:{tmp_path}/nope"))

    def test_ha_topology_is_structurally_excluded(self, workload_dir):
        spec = spec_from_dict(
            self._spec_dict(f"file:{workload_dir}", topologies=["ha"])
        )
        selected, excluded = spec.expand()
        assert not selected
        assert excluded and "chaos cluster" in excluded[0][1]

    def test_campaign_run_records_provenance_everywhere(
        self, workload_dir, tmp_path
    ):
        spec = spec_from_dict(self._spec_dict(f"file:{workload_dir}"))
        outcome = run_campaign(spec, workdir=tmp_path / "cells")
        assert all(r.ok for r in outcome.results)
        json_path = tmp_path / "campaign.json"
        write_json(outcome, json_path)
        payload = json.loads(json_path.read_text())
        cell = payload["results"][0]
        assert cell["workload_provenance"]["table"]["sha256"]
        markdown = render_markdown(outcome)
        assert "Workload provenance" in markdown
        assert cell["workload_provenance"]["table"]["sha256"][:12] in markdown
