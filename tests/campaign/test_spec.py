"""Spec parsing, validation, and matrix expansion."""

import json

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    CellBudget,
    SpecError,
    _cell_seed,
    _parse_toml_subset,
    load_spec,
    spec_from_dict,
)

FULL_TOML = """
[campaign]
name = "demo"
seed = 13

[budget]
packets = 500
updates = 48

[matrix]
workloads = ["fig15", "skewed"]
faults = ["none", "chip-flap"]
backends = ["fast"]
topologies = ["inproc", "inproc-durable"]

[filters]
exclude = ["skewed/chip-flap/*"]

[subsets]
smoke = ["fig15/none/fast/inproc"]
"""


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


def test_toml_spec_round_trip(tmp_path):
    spec = load_spec(_write(tmp_path, "demo.toml", FULL_TOML))
    assert spec.name == "demo"
    assert spec.seed == 13
    assert spec.budget.packets == 500
    assert spec.workloads == ["fig15", "skewed"]
    cells, excluded = spec.expand()
    ids = [cell.id for cell in cells]
    # 2×2×1×2 = 8 combos, minus the 2 glob-excluded ones.
    assert len(ids) == 6
    assert not excluded
    assert "skewed/chip-flap/fast/inproc" not in ids


def test_json_spec_equivalent(tmp_path):
    data = {
        "campaign": {"name": "demo", "seed": 13},
        "matrix": {"workloads": ["fig15"], "topologies": ["inproc"]},
    }
    spec = load_spec(_write(tmp_path, "demo.json", json.dumps(data)))
    cells, _ = spec.expand()
    assert [cell.id for cell in cells] == ["fig15/none/fast/inproc"]


def test_fallback_parser_matches_tomllib():
    tomllib = pytest.importorskip("tomllib")
    assert _parse_toml_subset(FULL_TOML, "<mem>") == tomllib.loads(FULL_TOML)


def test_fallback_parser_rejects_escapes():
    with pytest.raises(SpecError, match="escapes in strings"):
        _parse_toml_subset('[campaign]\nname = "a\\"b"', "<mem>")


def test_fallback_parser_names_the_line():
    with pytest.raises(SpecError, match="<mem>:3"):
        _parse_toml_subset("[campaign]\nseed = 1\nbogus line", "<mem>")


def test_unknown_axis_value_lists_known_ones():
    with pytest.raises(SpecError, match=r"unknown value\(s\) 'warp'"):
        spec_from_dict({"matrix": {"workloads": ["warp"]}})
    with pytest.raises(SpecError, match="known: fast"):
        spec_from_dict({"matrix": {"backends": ["gpu"]}})


def test_unknown_section_rejected():
    with pytest.raises(SpecError, match="unknown section"):
        spec_from_dict({"matrics": {}})


def test_bad_budget_key_rejected():
    with pytest.raises(SpecError, match=r"bad \[budget\] key"):
        spec_from_dict({"budget": {"pakkets": 3}})


def test_budget_floor_enforced():
    with pytest.raises(SpecError, match="budget.updates must be at least 1"):
        spec_from_dict({"budget": {"updates": 0}})


def test_duplicate_axis_value_rejected():
    with pytest.raises(SpecError, match="repeats a value"):
        spec_from_dict({"matrix": {"workloads": ["fig15", "fig15"]}})


def test_unsupported_suffix(tmp_path):
    path = _write(tmp_path, "spec.yaml", "campaign: {}")
    with pytest.raises(SpecError, match="unsupported spec format"):
        load_spec(path)


def test_structural_exclusions_are_reported_not_dropped():
    spec = spec_from_dict(
        {
            "matrix": {
                "faults": ["none", "kill-primary", "storm"],
                "topologies": ["inproc", "inproc-durable", "ha"],
            }
        }
    )
    cells, excluded = spec.expand()
    ids = {cell.id for cell in cells}
    reasons = dict(excluded)
    # kill-primary runs only under ha; ha runs only with kill-primary.
    assert "fig15/kill-primary/fast/ha" in ids
    assert "process-kill" in reasons["fig15/kill-primary/fast/inproc"]
    assert "kill-primary fault" in reasons["fig15/none/fast/ha"]
    # storm faults bypass the journal: durable topologies refuse them.
    assert "fig15/storm/fast/inproc" in ids
    assert "journal" in reasons["fig15/storm/fast/inproc-durable"]


def test_subset_selection_and_unknown_subset():
    spec = spec_from_dict(
        {
            "matrix": {"workloads": ["fig15", "skewed"]},
            "subsets": {"tiny": ["fig15/*"]},
        }
    )
    cells, _ = spec.expand(subset="tiny")
    assert [cell.id for cell in cells] == ["fig15/none/fast/inproc"]
    with pytest.raises(SpecError, match="spec defines: tiny"):
        spec.expand(subset="smoke")


def test_cell_pattern_matching_nothing_is_an_error():
    spec = CampaignSpec()
    with pytest.raises(SpecError, match="match nothing"):
        spec.expand(cells=["nope/*"])


def test_max_cells_truncates_in_matrix_order():
    spec = spec_from_dict({"matrix": {"workloads": ["fig15", "skewed"]}})
    cells, _ = spec.expand(max_cells=1)
    assert [cell.id for cell in cells] == ["fig15/none/fast/inproc"]


def test_cell_seeds_are_deterministic_and_distinct():
    spec = spec_from_dict({"matrix": {"workloads": ["fig15", "skewed"]}})
    first, _ = spec.expand()
    second, _ = spec.expand()
    assert [cell.seed for cell in first] == [cell.seed for cell in second]
    assert len({cell.seed for cell in first}) == len(first)
    assert _cell_seed(7, "a/b/c/d") != _cell_seed(8, "a/b/c/d")


def test_repro_command_names_the_cell():
    spec = CampaignSpec()
    cells, _ = spec.expand()
    command = cells[0].repro_command("spec.toml")
    assert "--spec spec.toml" in command
    assert "'fig15/none/fast/inproc'" in command


def test_budget_is_frozen_and_carried():
    budget = CellBudget(packets=9, updates=9)
    spec = CampaignSpec(budget=budget)
    cells, _ = spec.expand()
    assert cells[0].budget.packets == 9
    with pytest.raises(AttributeError):
        cells[0].budget.packets = 10
