"""Tests for the forwarding-equivalence verifier itself."""

from repro.compress.verify import (
    as_trie,
    critical_addresses,
    find_mismatch,
    find_overlap,
    forwarding_equal,
    is_disjoint_table,
)
from repro.net.prefix import ADDRESS_SPACE, Prefix
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestCriticalAddresses:
    def test_includes_boundaries(self):
        points = critical_addresses({bits("1"): 1})
        assert 0 in points
        assert (1 << 31) in points  # network of 1*

    def test_sorted_unique(self, rng):
        tables = [dict(random_routes(rng, 10, max_len=8)) for _ in range(2)]
        points = critical_addresses(*tables)
        assert points == sorted(set(points))
        assert all(0 <= p < ADDRESS_SPACE for p in points)

    def test_accepts_tries(self, small_trie):
        points = critical_addresses(small_trie)
        assert len(points) > 1


class TestFindMismatch:
    def test_detects_wrong_hop(self):
        original = {bits("1"): 1}
        candidate = {bits("1"): 2}
        mismatch = find_mismatch(original, candidate)
        assert mismatch is not None
        address, expected, actual = mismatch
        assert expected == 1 and actual == 2
        assert bits("1").contains_address(address)

    def test_detects_lost_coverage(self):
        assert find_mismatch({bits("1"): 1}, {}) is not None

    def test_detects_phantom_coverage(self):
        assert find_mismatch({}, {bits("1"): 1}) is not None

    def test_covered_only_excuses_extra_coverage(self):
        assert (
            find_mismatch({bits("1"): 1}, {Prefix.root(): 1}, covered_only=True)
            is None
        )

    def test_covered_only_still_checks_hops(self):
        assert (
            find_mismatch({bits("1"): 1}, {Prefix.root(): 2}, covered_only=True)
            is not None
        )

    def test_equal_tables(self, rng):
        table = dict(random_routes(rng, 12, max_len=8))
        assert forwarding_equal(table, dict(table))

    def test_subtle_boundary_split(self):
        # Same decisions expressed with different prefixes: must be equal.
        merged = {bits("1"): 1}
        split = {bits("10"): 1, bits("11"): 1}
        assert forwarding_equal(merged, split)

    def test_completeness_on_random_perturbations(self, rng):
        """Perturbing one entry's hop must always be caught."""
        for _ in range(20):
            table = dict(random_routes(rng, 8, max_len=6))
            if not table:
                continue
            victim = rng.choice(list(table))
            mutated = dict(table)
            mutated[victim] = table[victim] + 100
            assert not forwarding_equal(table, mutated)


class TestOverlap:
    def test_disjoint(self):
        assert is_disjoint_table({bits("00"): 1, bits("01"): 2})

    def test_nested_overlap_found(self):
        pair = find_overlap({bits("0"): 1, bits("01"): 2})
        assert pair is not None
        assert pair[0].overlaps(pair[1])

    def test_trie_input(self):
        trie = BinaryTrie.from_routes([(bits("0"), 1), (bits("01"), 2)])
        assert not is_disjoint_table(trie)

    def test_empty(self):
        assert is_disjoint_table({})


class TestAsTrie:
    def test_dict_conversion(self):
        trie = as_trie({bits("1"): 5})
        assert trie.lookup(1 << 31) == 5

    def test_trie_passthrough(self, small_trie):
        assert as_trie(small_trie) is small_trie
