"""Tests for the lazy (bounded-work) ONRTC maintainer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.labels import CompressionMode
from repro.compress.lazy import LazyOnrtcTable, minimal_cover
from repro.compress.onrtc import compress
from repro.compress.verify import find_mismatch, is_disjoint_table
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes

STRICT = CompressionMode.STRICT
DONT_CARE = CompressionMode.DONT_CARE


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestMinimalCover:
    def test_uniform_region(self):
        source = BinaryTrie.from_routes([(bits("1"), 5)])
        assert minimal_cover(source, bits("10"), STRICT) == {bits("10"): 5}

    def test_empty_region(self):
        source = BinaryTrie.from_routes([(bits("1"), 5)])
        assert minimal_cover(source, bits("0"), STRICT) == {}

    def test_structured_region(self):
        source = BinaryTrie.from_routes([(bits("1"), 1), (bits("101"), 2)])
        cover = minimal_cover(source, bits("1"), STRICT)
        assert cover[bits("101")] == 2
        table = BinaryTrie.from_routes(cover.items())
        for address in (0b100 << 29, 0b101 << 29, 0b111 << 29):
            assert table.lookup(address) == source.lookup(address)

    def test_matches_global_compression_at_root(self, rng):
        for _ in range(20):
            source = BinaryTrie.from_routes(random_routes(rng, 8, max_len=6))
            for mode in (STRICT, DONT_CARE):
                assert minimal_cover(source, Prefix.root(), mode) == compress(
                    source, mode
                )


class TestLazyMaintenance:
    def test_starts_minimal(self, rng):
        routes = random_routes(rng, 10, max_len=6)
        lazy = LazyOnrtcTable(routes, mode=DONT_CARE)
        assert lazy.table == compress(BinaryTrie.from_routes(routes), DONT_CARE)
        assert lazy.minimality_gap() == pytest.approx(1.0)

    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    def test_always_disjoint_and_equivalent(self, mode):
        rng = random.Random(14)
        for trial in range(20):
            routes = random_routes(rng, rng.randint(0, 8), max_len=6)
            lazy = LazyOnrtcTable(routes, mode=mode)
            shadow = BinaryTrie.from_routes(routes)
            for _ in range(15):
                length = rng.randint(0, 6)
                prefix = Prefix(
                    rng.randrange(1 << length) if length else 0, length
                )
                if rng.random() < 0.6:
                    hop = rng.randint(1, 3)
                    shadow.insert(prefix, hop)
                    lazy.announce(prefix, hop)
                else:
                    shadow.delete(prefix)
                    lazy.withdraw(prefix)
                assert is_disjoint_table(lazy.table)
                assert (
                    find_mismatch(
                        shadow, lazy.table, covered_only=(mode is DONT_CARE)
                    )
                    is None
                )

    def test_diffs_replay_to_table(self, rng):
        routes = random_routes(rng, 8, max_len=6)
        lazy = LazyOnrtcTable(routes, mode=DONT_CARE)
        mirror = dict(lazy.table)
        for _ in range(40):
            length = rng.randint(0, 6)
            prefix = Prefix(rng.randrange(1 << length) if length else 0, length)
            diff = lazy.apply(
                prefix, rng.randint(1, 3) if rng.random() < 0.6 else None
            )
            for removed, _ in diff.removes:
                del mirror[removed]
            for added, hop in diff.adds:
                mirror[added] = hop
        assert mirror == lazy.table

    def test_withdraw_absent_is_noop(self):
        lazy = LazyOnrtcTable([(bits("1"), 1)])
        assert lazy.withdraw(bits("0")).is_empty

    def test_recompress_restores_minimality(self):
        rng = random.Random(15)
        routes = random_routes(rng, 10, max_len=6)
        lazy = LazyOnrtcTable(routes, mode=DONT_CARE)
        shadow = BinaryTrie.from_routes(routes)
        for _ in range(50):
            length = rng.randint(0, 6)
            prefix = Prefix(rng.randrange(1 << length) if length else 0, length)
            if rng.random() < 0.6:
                hop = rng.randint(1, 3)
                shadow.insert(prefix, hop)
                lazy.announce(prefix, hop)
            else:
                shadow.delete(prefix)
                lazy.withdraw(prefix)
        lazy.recompress()
        assert lazy.table == compress(shadow, DONT_CARE)
        assert lazy.minimality_gap() == pytest.approx(1.0)

    def test_never_smaller_than_minimal(self, rng):
        routes = random_routes(rng, 10, max_len=6)
        lazy = LazyOnrtcTable(routes, mode=DONT_CARE)
        for _ in range(30):
            length = rng.randint(0, 6)
            prefix = Prefix(rng.randrange(1 << length) if length else 0, length)
            lazy.apply(prefix, rng.randint(1, 3) if rng.random() < 0.5 else None)
            assert lazy.minimality_gap() >= 1.0 - 1e-9

    def test_repair_is_local(self):
        """An update under one /8 must not touch entries under another."""
        left = [(Prefix((10 << 8) | v, 16), 1) for v in range(16)]
        right = [(Prefix((20 << 8) | v, 16), 2) for v in range(16)]
        lazy = LazyOnrtcTable(left + right, mode=STRICT)
        before_right = {
            p: h for p, h in lazy.table.items() if p.bit_at(3) == 1
        }
        diff = lazy.announce(Prefix((10 << 16) | 77, 24), 9)
        for prefix, _hop in diff.adds + diff.removes:
            assert Prefix(10, 8).contains(prefix)
        after_right = {
            p: h for p, h in lazy.table.items() if p.bit_at(3) == 1
        }
        assert before_right == after_right


operations = st.lists(
    st.tuples(
        st.integers(0, 5).flatmap(
            lambda length: st.tuples(
                st.integers(0, (1 << length) - 1 if length else 0),
                st.just(length),
            )
        ),
        st.one_of(st.none(), st.integers(1, 3)),
    ),
    max_size=20,
)


@settings(max_examples=50, deadline=None)
@given(operations, st.sampled_from([STRICT, DONT_CARE]))
def test_property_lazy_equivalence(ops, mode):
    lazy = LazyOnrtcTable([], mode=mode)
    shadow = BinaryTrie()
    for (value, length), hop in ops:
        prefix = Prefix(value, length)
        if hop is None:
            shadow.delete(prefix)
            lazy.withdraw(prefix)
        else:
            shadow.insert(prefix, hop)
            lazy.announce(prefix, hop)
        assert is_disjoint_table(lazy.table)
        assert (
            find_mismatch(shadow, lazy.table, covered_only=(mode is DONT_CARE))
            is None
        )
