"""Tests for one-shot ONRTC compression: equivalence, disjointness,
minimality."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress, compressed_size, compression_report
from repro.compress.verify import (
    find_mismatch,
    forwarding_equal,
    is_disjoint_table,
)
from repro.net.prefix import Prefix
from repro.trie.leafpush import leaf_push
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes

STRICT = CompressionMode.STRICT
DONT_CARE = CompressionMode.DONT_CARE


def bits(pattern):
    return Prefix.from_bits(pattern)


small_tables = st.lists(
    st.tuples(
        st.integers(0, 5).flatmap(
            lambda length: st.tuples(
                st.integers(0, (1 << length) - 1 if length else 0),
                st.just(length),
            )
        ),
        st.integers(1, 3),
    ),
    max_size=10,
).map(
    lambda entries: list(
        {Prefix(v, l): hop for (v, l), hop in entries}.items()
    )
)


class TestKnownCases:
    def test_redundant_child_elided(self):
        trie = BinaryTrie.from_routes([(bits("0"), 7), (bits("00"), 7)])
        assert compress(trie, STRICT) == {bits("0"): 7}

    def test_sibling_merge(self):
        trie = BinaryTrie.from_routes([(bits("00"), 7), (bits("01"), 7)])
        assert compress(trie, STRICT) == {bits("0"): 7}

    def test_punch_out_splits_in_strict(self):
        trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("100"), 2)])
        table = compress(trie, STRICT)
        assert table[bits("100")] == 2
        # the rest of 1* must be covered by hop-1 entries without touching 0*
        assert all(bits("1").contains(p) for p in table)

    def test_dontcare_absorbs_unmatched_space(self):
        # A single /3 route: strict needs the exact prefix, don't-care can
        # cover the whole space with one entry.
        trie = BinaryTrie.from_routes([(bits("101"), 4)])
        assert compress(trie, STRICT) == {bits("101"): 4}
        assert compress(trie, DONT_CARE) == {Prefix.root(): 4}

    def test_empty_table(self):
        assert compress(BinaryTrie(), STRICT) == {}
        assert compress(BinaryTrie(), DONT_CARE) == {}

    def test_default_route_only(self):
        trie = BinaryTrie.from_routes([(Prefix.root(), 1)])
        for mode in (STRICT, DONT_CARE):
            assert compress(trie, mode) == {Prefix.root(): 1}

    def test_hop_zero_not_dropped(self):
        trie = BinaryTrie.from_routes([(bits("1"), 0)])
        assert compress(trie, STRICT) == {bits("1"): 0}


class TestInvariants:
    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    def test_random_tables(self, rng, mode):
        for _ in range(60):
            trie = BinaryTrie.from_routes(random_routes(rng, 10, max_len=7))
            table = compress(trie, mode)
            assert is_disjoint_table(table)
            assert (
                find_mismatch(trie, table, covered_only=(mode is DONT_CARE))
                is None
            )

    def test_strict_never_beats_dontcare(self, rng):
        for _ in range(40):
            trie = BinaryTrie.from_routes(random_routes(rng, 8, max_len=6))
            assert compressed_size(trie, DONT_CARE) <= compressed_size(
                trie, STRICT
            )

    def test_strict_never_worse_than_leaf_push(self, rng):
        for _ in range(40):
            trie = BinaryTrie.from_routes(random_routes(rng, 8, max_len=6))
            assert compressed_size(trie, STRICT) <= len(leaf_push(trie))

    @settings(max_examples=60, deadline=None)
    @given(small_tables)
    def test_property_equivalence(self, routes):
        trie = BinaryTrie.from_routes(routes)
        for mode in (STRICT, DONT_CARE):
            table = compress(trie, mode)
            assert is_disjoint_table(table)
            assert (
                find_mismatch(trie, table, covered_only=(mode is DONT_CARE))
                is None
            )


def _brute_force_minimum(trie, depth, mode):
    """Exhaustive minimal disjoint table size over a tiny universe.

    Enumerates disjoint prefix covers of the ``depth``-bit space by dynamic
    programming over the complete binary tree: minimal entries so that every
    covered address keeps its hop, with don't-care freedom where requested.
    This independent formulation cross-checks the label DP.
    """
    hops = {}
    for value in range(1 << depth):
        address = value << (32 - depth)
        hops[value] = trie.lookup(address)

    def solve(value, length):
        # returns dict label -> cost where label is a hop usable to cover
        # the whole region with one entry, plus special keys:
        #   "split": cheapest cost without single-entry coverage
        #   "bot":   True when the region is entirely unmatched
        if length == depth:
            hop = hops[value]
            if hop is None:
                return {"bot": True, "split": 0, "covers": None}
            return {"bot": False, "split": 1, "covers": {hop: 1}}
        left = solve(value << 1, length + 1)
        right = solve((value << 1) | 1, length + 1)
        bot = left["bot"] and right["bot"]
        split = left["split"] + right["split"]
        covers = {}
        left_covers = left["covers"] or {}
        right_covers = right["covers"] or {}
        candidates = set(left_covers) | set(right_covers)
        for hop in candidates:
            ok_left = hop in left_covers or (
                left["bot"] and mode is DONT_CARE
            )
            ok_right = hop in right_covers or (
                right["bot"] and mode is DONT_CARE
            )
            if ok_left and ok_right:
                covers[hop] = 1
        if bot:
            covers = None
            split = 0
        best_split = min(split, min(covers.values()) if covers else split)
        return {"bot": bot, "split": best_split, "covers": covers}

    top = solve(0, 0)
    return top["split"]


class TestMinimality:
    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    def test_exhaustive_small_universe(self, rng, mode):
        for _ in range(120):
            routes = random_routes(rng, rng.randint(0, 6), max_len=4)
            trie = BinaryTrie.from_routes(routes)
            expected = _brute_force_minimum(trie, 4, mode)
            assert compressed_size(trie, mode) == expected, routes

    def test_all_two_route_tables_depth3(self):
        """Exhaustive: every table of ≤2 routes over 3-bit prefixes."""
        prefixes = [Prefix(v, l) for l in range(4) for v in range(1 << l)]
        for p1, p2 in product(prefixes, repeat=2):
            for h1, h2 in ((1, 1), (1, 2)):
                trie = BinaryTrie.from_routes([(p1, h1), (p2, h2)])
                for mode in (STRICT, DONT_CARE):
                    table = compress(trie, mode)
                    assert is_disjoint_table(table)
                    assert (
                        find_mismatch(
                            trie, table, covered_only=(mode is DONT_CARE)
                        )
                        is None
                    )
                    assert len(table) == _brute_force_minimum(trie, 3, mode)


class TestReport:
    def test_report_fields(self, rng):
        trie = BinaryTrie.from_routes(random_routes(rng, 12, max_len=8))
        report = compression_report(trie, DONT_CARE)
        assert report.original_entries == len(trie)
        assert report.compressed_entries == compressed_size(trie, DONT_CARE)
        assert report.ratio == pytest.approx(
            report.compressed_entries / report.original_entries
        )

    def test_empty_report_ratio(self):
        assert compression_report(BinaryTrie()).ratio == 1.0

    def test_small_tables_still_compress(self, small_trie):
        """Even the 2k test fixture compresses well below 1.0.

        The paper-band (~71%) calibration is checked at realistic scale in
        ``tests/workload/test_ribgen.py``; small tables compress further
        because allocation blocks are sparser.
        """
        report = compression_report(small_trie, DONT_CARE)
        assert report.ratio <= 0.90
