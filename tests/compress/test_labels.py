"""Tests for the ONRTC label algebra."""

import pytest

from repro.compress.labels import (
    BOT,
    MIXED,
    CompressionMode,
    is_emittable,
    leaf_label,
    merge,
)

STRICT = CompressionMode.STRICT
DONT_CARE = CompressionMode.DONT_CARE


class TestMerge:
    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    def test_equal_hops_merge(self, mode):
        assert merge(3, 3, mode) == 3

    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    def test_different_hops_mix(self, mode):
        assert merge(3, 4, mode) is MIXED

    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    def test_bot_merges_with_bot(self, mode):
        assert merge(BOT, BOT, mode) is BOT

    def test_strict_keeps_bot_separate(self):
        assert merge(BOT, 3, STRICT) is MIXED
        assert merge(3, BOT, STRICT) is MIXED

    def test_dontcare_absorbs_bot(self):
        assert merge(BOT, 3, DONT_CARE) == 3
        assert merge(3, BOT, DONT_CARE) == 3

    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    @pytest.mark.parametrize("other", [BOT, MIXED, 7])
    def test_mixed_is_absorbing(self, mode, other):
        assert merge(MIXED, other, mode) is MIXED
        assert merge(other, MIXED, mode) is MIXED

    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    def test_merge_commutes(self, mode):
        for a in (BOT, MIXED, 1, 2):
            for b in (BOT, MIXED, 1, 2):
                assert merge(a, b, mode) == merge(b, a, mode)


class TestLeafLabel:
    def test_none_is_bot(self):
        assert leaf_label(None) is BOT

    def test_hop_passes_through(self):
        assert leaf_label(5) == 5

    def test_hop_zero_is_a_real_hop(self):
        assert leaf_label(0) == 0
        assert is_emittable(leaf_label(0))


class TestEmittable:
    def test_hops_emit(self):
        assert is_emittable(7)

    def test_sentinels_do_not(self):
        assert not is_emittable(BOT)
        assert not is_emittable(MIXED)
