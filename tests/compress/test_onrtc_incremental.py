"""Tests for incremental ONRTC: diffs must track the one-shot optimum."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import OnrtcTable, compress
from repro.compress.verify import find_mismatch, is_disjoint_table
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes

STRICT = CompressionMode.STRICT
DONT_CARE = CompressionMode.DONT_CARE


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestBasics:
    def test_initial_build_matches_one_shot(self, rng):
        for mode in (STRICT, DONT_CARE):
            routes = random_routes(rng, 12, max_len=8)
            table = OnrtcTable(routes, mode=mode)
            assert table.table == compress(
                BinaryTrie.from_routes(routes), mode
            )

    def test_announce_reports_diff(self):
        table = OnrtcTable([], mode=STRICT)
        diff = table.announce(bits("10"), 5)
        assert ((bits("10"), 5) in diff.adds) and not diff.removes
        assert table.table == {bits("10"): 5}

    def test_withdraw_reports_diff(self):
        table = OnrtcTable([(bits("10"), 5)], mode=STRICT)
        diff = table.withdraw(bits("10"))
        assert ((bits("10"), 5) in diff.removes) and not diff.adds
        assert table.table == {}

    def test_withdraw_absent_is_empty_diff(self):
        table = OnrtcTable([(bits("10"), 5)], mode=STRICT)
        diff = table.withdraw(bits("01"))
        assert diff.is_empty

    def test_redundant_announce_is_empty_diff(self):
        # Announcing a more-specific with the hop it already inherits
        # changes nothing in the compressed table.
        table = OnrtcTable([(bits("1"), 5)], mode=STRICT)
        diff = table.announce(bits("11"), 5)
        assert diff.is_empty
        assert table.table == {bits("1"): 5}

    def test_apply_dispatches(self):
        table = OnrtcTable([], mode=STRICT)
        table.apply(bits("1"), 3)
        assert table.table == {bits("1"): 3}
        table.apply(bits("1"), None)
        assert table.table == {}

    def test_punch_out_and_heal(self):
        table = OnrtcTable([(bits("1"), 1)], mode=STRICT)
        table.announce(bits("100"), 2)
        assert table.table[bits("100")] == 2
        assert len(table) > 1
        table.withdraw(bits("100"))
        assert table.table == {bits("1"): 1}

    def test_routes_sorted(self, rng):
        table = OnrtcTable(random_routes(rng, 15, max_len=8), mode=DONT_CARE)
        listed = [prefix for prefix, _ in table.routes()]
        assert listed == sorted(listed, key=lambda p: p.sort_key())

    def test_lookup_reference(self):
        table = OnrtcTable([(bits("1"), 1), (bits("100"), 2)], mode=STRICT)
        assert table.lookup(0b100 << 29) == 2
        assert table.lookup(0b111 << 29) == 1
        assert table.lookup(0) is None


class TestStreamConsistency:
    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    def test_matches_full_recompute_under_churn(self, mode):
        rng = random.Random(99)
        for trial in range(25):
            routes = random_routes(rng, rng.randint(0, 8), max_len=6)
            incremental = OnrtcTable(routes, mode=mode)
            shadow = BinaryTrie.from_routes(routes)
            for _ in range(15):
                length = rng.randint(0, 6)
                value = rng.randrange(1 << length) if length else 0
                prefix = Prefix(value, length)
                if rng.random() < 0.6:
                    hop = rng.randint(1, 3)
                    shadow.insert(prefix, hop)
                    incremental.announce(prefix, hop)
                else:
                    shadow.delete(prefix)
                    incremental.withdraw(prefix)
                assert incremental.table == compress(shadow, mode)

    @pytest.mark.parametrize("mode", [STRICT, DONT_CARE])
    def test_always_disjoint_and_equivalent(self, mode):
        rng = random.Random(7)
        routes = random_routes(rng, 10, max_len=6)
        incremental = OnrtcTable(routes, mode=mode)
        shadow = BinaryTrie.from_routes(routes)
        for _ in range(60):
            length = rng.randint(0, 6)
            value = rng.randrange(1 << length) if length else 0
            prefix = Prefix(value, length)
            if rng.random() < 0.5:
                hop = rng.randint(1, 3)
                shadow.insert(prefix, hop)
                incremental.announce(prefix, hop)
            else:
                shadow.delete(prefix)
                incremental.withdraw(prefix)
            assert is_disjoint_table(incremental.table)
            assert (
                find_mismatch(
                    shadow,
                    incremental.table,
                    covered_only=(mode is DONT_CARE),
                )
                is None
            )

    def test_diffs_replay_to_final_table(self, rng):
        """Applying every diff to a mirror reproduces the final table."""
        routes = random_routes(rng, 8, max_len=6)
        incremental = OnrtcTable(routes, mode=DONT_CARE)
        mirror = dict(incremental.table)
        for _ in range(40):
            length = rng.randint(0, 6)
            value = rng.randrange(1 << length) if length else 0
            prefix = Prefix(value, length)
            if rng.random() < 0.6:
                diff = incremental.announce(prefix, rng.randint(1, 3))
            else:
                diff = incremental.withdraw(prefix)
            for removed, _hop in diff.removes:
                del mirror[removed]
            for added, hop in diff.adds:
                mirror[added] = hop
        assert mirror == incremental.table

    def test_relabel_work_is_reported(self):
        table = OnrtcTable([(bits("1"), 1)], mode=STRICT)
        diff = table.announce(bits("10101"), 2)
        assert diff.relabelled > 0


operations = st.lists(
    st.tuples(
        st.integers(0, 5).flatmap(
            lambda length: st.tuples(
                st.integers(0, (1 << length) - 1 if length else 0),
                st.just(length),
            )
        ),
        st.one_of(st.none(), st.integers(1, 3)),
    ),
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(operations, st.sampled_from([STRICT, DONT_CARE]))
def test_property_stream_equals_recompute(ops, mode):
    incremental = OnrtcTable([], mode=mode)
    shadow = BinaryTrie()
    for (value, length), hop in ops:
        prefix = Prefix(value, length)
        if hop is None:
            shadow.delete(prefix)
            incremental.withdraw(prefix)
        else:
            shadow.insert(prefix, hop)
            incremental.announce(prefix, hop)
    assert incremental.table == compress(shadow, mode)
