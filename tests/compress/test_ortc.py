"""Tests for the ORTC baseline compressor."""

import pytest

from repro.compress.ortc import (
    DROP,
    compress_ortc,
    compressed_size_ortc,
    lookup_ortc,
)
from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestKnownCases:
    def test_redundant_child_elided(self):
        trie = BinaryTrie.from_routes([(bits("0"), 7), (bits("00"), 7)])
        table = compress_ortc(trie)
        assert table == {Prefix.root(): DROP, bits("0"): 7}

    def test_default_plus_specific(self):
        trie = BinaryTrie.from_routes([(Prefix.root(), 1), (bits("1"), 2)])
        table = compress_ortc(trie)
        assert len(table) == 2

    def test_overlap_allowed_beats_disjoint(self):
        # 1* -> 1 with a punch-out 100 -> 2: ORTC keeps two entries where a
        # disjoint table needs more.
        trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("100"), 2)])
        table = compress_ortc(trie)
        real_entries = {p: h for p, h in table.items() if h != DROP}
        assert len(real_entries) == 2

    def test_empty_table(self):
        table = compress_ortc(BinaryTrie())
        assert table == {Prefix.root(): DROP}

    def test_drop_entries_are_null_routes(self):
        # 0* uncovered next to 00->5: the DROP hole must be honoured.
        trie = BinaryTrie.from_routes([(bits("00"), 5), (bits("1"), 5)])
        table = compress_ortc(trie)
        assert lookup_ortc(table, 0b01 << 30) is None
        assert lookup_ortc(table, 0) == 5


class TestEquivalence:
    def test_random_tables(self, rng):
        for _ in range(60):
            trie = BinaryTrie.from_routes(random_routes(rng, 10, max_len=7))
            table = compress_ortc(trie)
            probes = [0, 1 << 31, (1 << 32) - 1]
            probes += [rng.randrange(1 << 32) for _ in range(40)]
            for address in probes:
                assert lookup_ortc(table, address) == trie.lookup(address)

    def test_never_larger_than_original_plus_default(self, rng):
        for _ in range(60):
            routes = random_routes(rng, 10, max_len=7)
            trie = BinaryTrie.from_routes(routes)
            # ORTC is optimal among overlapping tables; the original plus
            # one virtual default is always a feasible solution.
            assert compressed_size_ortc(trie) <= len(routes) + 1

    def test_compresses_synthetic_rib(self, small_trie):
        assert compressed_size_ortc(small_trie) < len(small_trie)


class TestOptimalityCrossCheck:
    def test_not_worse_than_onrtc_strict_plus_one(self, rng):
        """Any disjoint table is a valid overlapping table; ORTC may need
        one extra virtual-default entry when holes force it."""
        from repro.compress.labels import CompressionMode
        from repro.compress.onrtc import compressed_size

        for _ in range(60):
            trie = BinaryTrie.from_routes(random_routes(rng, 8, max_len=6))
            assert (
                compressed_size_ortc(trie)
                <= compressed_size(trie, CompressionMode.STRICT) + 1
            )
