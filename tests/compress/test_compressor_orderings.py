"""Cross-compressor orderings on realistic tables.

The compression design space has a strict dominance structure; these tests
pin it on slices of the calibrated synthetic RIB (not just tiny random
tables):

    ORTC ≤ ONRTC-strict + 1 ≤ leaf-push + 1        (overlap is power)
    ONRTC-don't-care ≤ ONRTC-strict ≤ leaf-push    (freedom is power)

and all of them must be forwarding-equivalent under their own contract.
"""

import pytest

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.compress.ortc import compress_ortc, lookup_ortc
from repro.compress.verify import find_mismatch, is_disjoint_table
from repro.trie.leafpush import leaf_push
from repro.trie.trie import BinaryTrie


@pytest.fixture(scope="module")
def tables(small_rib):
    slices = {
        "dense": small_rib[:800],
        "sparse": small_rib[::5],
        "full": small_rib,
    }
    return {
        name: BinaryTrie.from_routes(routes)
        for name, routes in slices.items()
    }


@pytest.mark.parametrize("name", ["dense", "sparse", "full"])
class TestDominance:
    def test_size_orderings(self, tables, name):
        trie = tables[name]
        pushed = len(leaf_push(trie))
        strict = len(compress(trie, CompressionMode.STRICT))
        dontcare = len(compress(trie, CompressionMode.DONT_CARE))
        ortc = len(compress_ortc(trie))
        assert dontcare <= strict <= pushed
        assert ortc <= strict + 1

    def test_all_disjoint_except_ortc(self, tables, name):
        trie = tables[name]
        assert is_disjoint_table(compress(trie, CompressionMode.STRICT))
        assert is_disjoint_table(compress(trie, CompressionMode.DONT_CARE))
        assert leaf_push(trie).is_disjoint()

    def test_equivalence_contracts(self, tables, name):
        trie = tables[name]
        assert (
            find_mismatch(trie, compress(trie, CompressionMode.STRICT))
            is None
        )
        assert (
            find_mismatch(
                trie,
                compress(trie, CompressionMode.DONT_CARE),
                covered_only=True,
            )
            is None
        )

    def test_ortc_equivalence_sampled(self, tables, name, rng):
        trie = tables[name]
        table = compress_ortc(trie)
        for _ in range(200):
            address = rng.getrandbits(32)
            assert lookup_ortc(table, address) == trie.lookup(address)
        # and exactly at every route boundary, the hard cases:
        for prefix, _hop in list(trie.routes())[:150]:
            assert lookup_ortc(table, prefix.network) == trie.lookup(
                prefix.network
            )
            assert lookup_ortc(table, prefix.broadcast) == trie.lookup(
                prefix.broadcast
            )


class TestIdempotence:
    def test_compressing_compressed_table_is_fixed_point(self, tables):
        trie = tables["dense"]
        for mode in CompressionMode:
            once = compress(trie, mode)
            again = compress(BinaryTrie.from_routes(once.items()), mode)
            assert again == once
