"""Tests for the TCAM chip model."""

import pytest

from repro.net.prefix import Prefix
from repro.tcam.device import (
    MultipleMatchError,
    Tcam,
    TcamError,
)
from repro.tcam.entry import TcamEntry


def bits(pattern):
    return Prefix.from_bits(pattern)


def entry(pattern, hop=1):
    return TcamEntry(bits(pattern), hop)


class TestEntry:
    def test_matches(self):
        assert entry("10").matches(0b10 << 30)
        assert not entry("10").matches(0b11 << 30)

    def test_str(self):
        assert "->" in str(entry("1"))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            entry("1").next_hop = 2


class TestSearch:
    def test_first_match_with_encoder(self):
        chip = Tcam(4, priority_encoder=True)
        chip.write(0, entry("10", 1))
        chip.write(1, entry("1", 2))
        assert chip.search(0b10 << 30).next_hop == 1  # lowest index wins

    def test_encoder_order_dependence(self):
        # The same entries in the wrong order return the wrong match —
        # precisely why ordered layouts (and their shifts) exist.
        chip = Tcam(4, priority_encoder=True)
        chip.write(0, entry("1", 2))
        chip.write(1, entry("10", 1))
        assert chip.search(0b10 << 30).next_hop == 2

    def test_no_encoder_unique_match(self):
        chip = Tcam(4, priority_encoder=False)
        chip.write(2, entry("10", 1))
        assert chip.search(0b10 << 30).next_hop == 1

    def test_no_encoder_multi_match_raises(self):
        chip = Tcam(4, priority_encoder=False)
        chip.write(0, entry("1", 1))
        chip.write(1, entry("10", 2))
        with pytest.raises(MultipleMatchError):
            chip.search(0b10 << 30)

    def test_miss_returns_none(self):
        chip = Tcam(4)
        chip.write(0, entry("1", 1))
        assert chip.search(0) is None

    def test_search_range_restricted(self):
        chip = Tcam(4, priority_encoder=False)
        chip.write(0, entry("1", 1))
        assert chip.search(1 << 31, start=1, end=4) is None

    def test_search_counts_activation(self):
        chip = Tcam(10)
        chip.search(0)
        chip.search(0, 2, 7)
        assert chip.counters.searches == 2
        assert chip.counters.activated_slots == 10 + 5

    def test_invalid_range(self):
        with pytest.raises(TcamError):
            Tcam(4).search(0, 2, 6)


class TestMutation:
    def test_write_and_read(self):
        chip = Tcam(4)
        chip.write(3, entry("11", 9))
        assert chip.read(3).next_hop == 9
        assert chip.counters.writes == 1

    def test_invalidate(self):
        chip = Tcam(4)
        chip.write(0, entry("1"))
        chip.invalidate(0)
        assert chip.read(0) is None
        assert chip.counters.invalidates == 1

    def test_move(self):
        chip = Tcam(4)
        chip.write(0, entry("1", 5))
        chip.move(0, 2)
        assert chip.read(0) is None
        assert chip.read(2).next_hop == 5
        assert chip.counters.moves == 1

    def test_move_from_empty_rejected(self):
        with pytest.raises(TcamError):
            Tcam(4).move(0, 1)

    def test_move_onto_occupied_rejected(self):
        chip = Tcam(4)
        chip.write(0, entry("0"))
        chip.write(1, entry("1"))
        with pytest.raises(TcamError):
            chip.move(0, 1)

    def test_index_bounds(self):
        chip = Tcam(4)
        with pytest.raises(TcamError):
            chip.write(4, entry("1"))
        with pytest.raises(TcamError):
            chip.read(-1)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Tcam(0)


class TestIntrospection:
    def test_occupancy_and_entries(self):
        chip = Tcam(4)
        chip.write(1, entry("0", 1))
        chip.write(3, entry("1", 2))
        assert chip.occupancy() == 2
        assert [e.next_hop for e in chip.entries()] == [1, 2]
        assert chip.occupancy(0, 2) == 1

    def test_counters_snapshot_is_copy(self):
        chip = Tcam(4)
        snapshot = chip.counters.snapshot()
        chip.write(0, entry("1"))
        assert snapshot.writes == 0


class TestRegion:
    def test_region_offsets(self):
        chip = Tcam(8)
        region = chip.region(4, 4)
        region.write(0, entry("1", 7))
        assert chip.read(4).next_hop == 7
        assert region.read(0).next_hop == 7

    def test_region_search_isolated(self):
        chip = Tcam(8, priority_encoder=False)
        main = chip.region(0, 4)
        dred = chip.region(4, 4)
        main.write(0, entry("1", 1))
        assert dred.search(1 << 31) is None
        assert main.search(1 << 31).next_hop == 1

    def test_region_move_and_occupancy(self):
        chip = Tcam(8)
        region = chip.region(2, 4)
        region.write(0, entry("1", 1))
        region.move(0, 3)
        assert chip.read(5).next_hop == 1
        assert region.occupancy() == 1

    def test_region_bounds(self):
        chip = Tcam(8)
        with pytest.raises(TcamError):
            chip.region(6, 4)
        region = chip.region(0, 4)
        with pytest.raises(TcamError):
            region.write(4, entry("1"))
