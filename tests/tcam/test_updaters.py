"""Tests for the three TCAM update strategies.

Every updater must (a) keep lookups correct after arbitrary update
sequences and (b) respect its own move-count guarantee:

* naive: O(n) worst case, full order maintained;
* PLO: ≤ 32 moves, partial (length) order maintained;
* CLUE: ≤ 1 move, disjoint entries only.
"""

import random

import pytest

from repro.net.prefix import Prefix
from repro.tcam.device import Tcam
from repro.tcam.update_base import DuplicatePrefixError, RegionFullError
from repro.tcam.update_clue import ClueUpdater, OverlapError
from repro.tcam.update_naive import NaiveUpdater
from repro.tcam.update_plo import PloUpdater
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


def make(updater_cls, capacity=256, encoder=True):
    chip = Tcam(capacity, priority_encoder=encoder)
    return chip, updater_cls(chip.region(0, capacity))


def random_disjoint(rng, count, length=10):
    values = rng.sample(range(1 << length), count)
    return [(Prefix(v, length), rng.randint(1, 5)) for v in values]


def check_against_reference(region, reference, rng, samples=150):
    trie = BinaryTrie.from_routes(reference.items())
    for _ in range(samples):
        address = rng.randrange(1 << 32)
        hit = region.search(address)
        assert (hit.next_hop if hit else None) == trie.lookup(address)


@pytest.mark.parametrize(
    "updater_cls,encoder,disjoint_only",
    [
        (NaiveUpdater, True, False),
        (PloUpdater, True, False),
        (ClueUpdater, False, True),
    ],
)
class TestCorrectnessUnderChurn:
    def test_random_sequences(self, updater_cls, encoder, disjoint_only):
        rng = random.Random(11)
        for trial in range(8):
            chip, updater = make(updater_cls, 400, encoder)
            reference = {}
            for _ in range(120):
                if disjoint_only:
                    candidates = random_disjoint(rng, 1)
                else:
                    candidates = random_routes(rng, 1, max_len=10)
                if not candidates:
                    continue
                prefix, hop = candidates[0]
                action = rng.random()
                if prefix in reference and action < 0.4:
                    result = updater.delete(prefix)
                    assert result.found
                    del reference[prefix]
                elif prefix in reference:
                    updater.modify(prefix, hop)
                    reference[prefix] = hop
                else:
                    if disjoint_only and any(
                        prefix.overlaps(other) for other in reference
                    ):
                        continue
                    updater.insert(prefix, hop)
                    reference[prefix] = hop
                assert len(updater) == len(reference)
                assert updater.region.occupancy() == len(reference)
            check_against_reference(updater.region, reference, rng)

    def test_delete_missing(self, updater_cls, encoder, disjoint_only):
        _, updater = make(updater_cls, 16, encoder)
        assert not updater.delete(bits("1")).found

    def test_duplicate_insert_rejected(self, updater_cls, encoder, disjoint_only):
        _, updater = make(updater_cls, 16, encoder)
        updater.insert(bits("10"), 1)
        with pytest.raises(DuplicatePrefixError):
            updater.insert(bits("10"), 2)

    def test_full_region_rejected(self, updater_cls, encoder, disjoint_only):
        _, updater = make(updater_cls, 2, encoder)
        updater.insert(bits("00"), 1)
        updater.insert(bits("01"), 1)
        with pytest.raises(RegionFullError):
            updater.insert(bits("10"), 1)

    def test_modify_missing(self, updater_cls, encoder, disjoint_only):
        _, updater = make(updater_cls, 16, encoder)
        assert not updater.modify(bits("1"), 2).found

    def test_apply_dispatch(self, updater_cls, encoder, disjoint_only):
        _, updater = make(updater_cls, 16, encoder)
        updater.apply(bits("01"), 1)          # insert
        updater.apply(bits("01"), 2)          # modify
        assert updater.region.search(0b01 << 30).next_hop == 2
        updater.apply(bits("01"), None)       # delete
        assert len(updater) == 0


class TestNaiveSpecifics:
    def test_full_order_maintained(self, rng):
        _, updater = make(NaiveUpdater, 64)
        for prefix, hop in random_routes(rng, 30, max_len=12):
            if prefix not in updater:
                updater.insert(prefix, hop)
        lengths = [entry.prefix.length for entry in updater.entries()]
        assert lengths == sorted(lengths, reverse=True)

    def test_insert_at_top_is_linear(self):
        chip, updater = make(NaiveUpdater, 64)
        for value in range(10):
            updater.insert(Prefix(value, 8), 1)
        before = chip.counters.moves
        updater.insert(Prefix(0, 16), 1)  # longest: shifts everything
        assert chip.counters.moves - before == 10

    def test_delete_compacts(self):
        chip, updater = make(NaiveUpdater, 64)
        for value in range(5):
            updater.insert(Prefix(value, 8), 1)
        updater.delete(Prefix(0, 8))
        assert updater.region.occupancy() == 4
        # entries stay contiguous from slot 0
        assert all(updater.region.read(i) is not None for i in range(4))


class TestPloSpecifics:
    def test_move_bound(self):
        rng = random.Random(5)
        chip, updater = make(PloUpdater, 2048)
        live = []
        worst = 0
        for _ in range(800):
            before = chip.counters.moves
            if live and rng.random() < 0.4:
                prefix = live.pop(rng.randrange(len(live)))
                updater.delete(prefix)
            else:
                length = rng.randint(1, 32)
                prefix = Prefix(rng.getrandbits(length), length)
                if prefix in updater:
                    continue
                updater.insert(prefix, 1)
                live.append(prefix)
            worst = max(worst, chip.counters.moves - before)
        assert worst <= 33

    def test_partial_order_maintained(self):
        rng = random.Random(6)
        _, updater = make(PloUpdater, 512)
        for _ in range(200):
            length = rng.randint(1, 32)
            prefix = Prefix(rng.getrandbits(length), length)
            if prefix not in updater:
                updater.insert(prefix, 1)
        lengths = [entry.prefix.length for entry in updater.entries()]
        assert lengths == sorted(lengths, reverse=True)

    def test_entries_packed_from_zero(self):
        rng = random.Random(7)
        _, updater = make(PloUpdater, 128)
        inserted = []
        for _ in range(40):
            length = rng.randint(1, 16)
            prefix = Prefix(rng.getrandbits(length), length)
            if prefix not in updater:
                updater.insert(prefix, 1)
                inserted.append(prefix)
        for prefix in inserted[::2]:
            updater.delete(prefix)
        occupancy = updater.region.occupancy()
        assert all(
            updater.region.read(offset) is not None
            for offset in range(occupancy)
        )

    def test_insert_moves_equal_nonempty_groups_below(self):
        chip, updater = make(PloUpdater, 128)
        updater.insert(Prefix(0, 8), 1)
        updater.insert(Prefix(0, 12), 1)
        updater.insert(Prefix(0, 16), 1)
        before = chip.counters.moves
        updater.insert(Prefix(1, 16), 1)  # two non-empty groups below /16
        assert chip.counters.moves - before == 2


class TestClueSpecifics:
    def test_at_most_one_move(self):
        rng = random.Random(8)
        chip, updater = make(ClueUpdater, 512, encoder=False)
        live = random_disjoint(rng, 200)
        for prefix, hop in live:
            before = chip.counters.moves
            updater.insert(prefix, hop)
            assert chip.counters.moves == before
        for prefix, _hop in rng.sample(live, 100):
            before = chip.counters.moves
            updater.delete(prefix)
            assert chip.counters.moves - before <= 1

    def test_overlap_rejected_both_directions(self):
        _, updater = make(ClueUpdater, 16, encoder=False)
        updater.insert(bits("10"), 1)
        with pytest.raises(OverlapError):
            updater.insert(bits("1"), 2)  # would cover a stored entry
        with pytest.raises(OverlapError):
            updater.insert(bits("101"), 2)  # stored entry covers it

    def test_overlap_allowed_after_delete(self):
        _, updater = make(ClueUpdater, 16, encoder=False)
        updater.insert(bits("10"), 1)
        updater.delete(bits("10"))
        updater.insert(bits("1"), 2)  # fine now
        assert len(updater) == 1

    def test_enforcement_can_be_disabled(self):
        chip = Tcam(16, priority_encoder=True)
        updater = ClueUpdater(chip.region(0, 16), enforce_disjoint=False)
        updater.insert(bits("1"), 1)
        updater.insert(bits("10"), 2)  # no complaint (encoder present)

    def test_delete_swaps_last_into_hole(self):
        chip, updater = make(ClueUpdater, 16, encoder=False)
        updater.insert(bits("00"), 1)
        updater.insert(bits("01"), 2)
        updater.insert(bits("10"), 3)
        updater.delete(bits("00"))
        # last entry (10) moved into slot 0; region stays packed
        assert updater.region.read(0).prefix == bits("10")
        assert updater.region.read(2) is None

    def test_positions_tracked(self):
        _, updater = make(ClueUpdater, 16, encoder=False)
        updater.insert(bits("00"), 1)
        updater.insert(bits("01"), 2)
        updater.delete(bits("00"))
        assert updater.position_of(bits("01")) == 0
