"""Tests for the TCAM timing and power models."""

import pytest

from repro.net.prefix import Prefix
from repro.tcam.device import Tcam
from repro.tcam.entry import TcamEntry
from repro.tcam.power import PowerModel, power_efficiency_ratio
from repro.tcam.timing import (
    CYNSE70256_MHZ,
    DEFAULT_MOVE_NS,
    PAPER_COST_MODEL,
    TcamCostModel,
)


class TestTiming:
    def test_paper_constant(self):
        # 1s / 41.5 MHz ≈ 24 ns — the paper's calibration (Section V-A).
        derived = TcamCostModel.from_frequency_mhz(CYNSE70256_MHZ)
        assert derived.move_ns == pytest.approx(24.096, abs=0.01)
        assert PAPER_COST_MODEL.move_ns == DEFAULT_MOVE_NS == 24.0

    def test_update_cost(self):
        model = TcamCostModel()
        assert model.update_cost_ns(moves=15) == 15 * 24.0
        assert model.update_cost_ns(moves=1, writes=1) == 48.0

    def test_search_cost(self):
        assert TcamCostModel().search_cost_ns(10) == 240.0

    def test_bad_frequency(self):
        with pytest.raises(ValueError):
            TcamCostModel.from_frequency_mhz(0)


class TestPower:
    def test_energy_proportional_to_activation(self):
        chip = Tcam(100)
        chip.write(0, TcamEntry(Prefix.root(), 1))
        chip.search(0)                    # full chip: 100 slots
        chip.search(0, 0, 25)             # one partition: 25 slots
        model = PowerModel(slot_energy_pj=2.0)
        assert model.chip_energy_pj(chip) == 2.0 * 125

    def test_total_over_bank(self):
        chips = [Tcam(10) for _ in range(3)]
        for chip in chips:
            chip.search(0)
        assert PowerModel().total_energy_pj(chips) == 30.0

    def test_partition_efficiency(self):
        # Searching one of 32 even partitions burns 1/32 the power.
        assert power_efficiency_ratio(1000, 32000) == pytest.approx(1 / 32)

    def test_efficiency_rejects_empty_table(self):
        with pytest.raises(ValueError):
            power_efficiency_ratio(10, 0)
