"""Chaos campaign machinery: process-kill faults and one real scenario.

The fault taxonomy gains process-level kills that only the chaos runner
may execute — the in-engine injector must refuse them, the trace format
must round-trip them, and ``serve --faults`` must reject them up front.
One quick scenario runs for real (subprocess replicas and all); the full
matrix is CI's ``chaos-smoke`` job and ``repro-clue chaos``.
"""

import pytest

from repro.cli import main
from repro.faults.injector import FaultInjector
from repro.faults.schedule import PROCESS_KINDS, FaultKind, FaultSchedule
from repro.net.prefix import Prefix
from repro.serve.chaos import (
    ChaosConfig,
    apply_to_reference,
    run_campaign,
)
from repro.trie.trie import BinaryTrie
from repro.workload.traces import load_faults, save_faults, save_table
from repro.workload.updategen import UpdateKind, UpdateMessage


class TestProcessKillFaults:
    def test_builders_and_engine_only_split(self):
        schedule = (
            FaultSchedule(seed=3)
            .chip_down(10, 0)
            .kill_primary(5)
            .kill_backup(20)
        )
        assert schedule.has_process_kills
        assert [e.kind for e in schedule.process_kills()] == [
            FaultKind.KILL_PRIMARY,
            FaultKind.KILL_BACKUP,
        ]
        stripped = schedule.engine_only()
        assert not stripped.has_process_kills
        assert [e.kind for e in stripped.events] == [FaultKind.CHIP_DOWN]
        assert stripped.seed == schedule.seed
        # The original is untouched: engine_only is a copy.
        assert len(schedule.events) == 3

    def test_injector_refuses_process_kills(self):
        schedule = FaultSchedule().kill_primary(0)
        injector = FaultInjector(engine=None, schedule=schedule)
        with pytest.raises(ValueError, match="engine_only"):
            injector.tick(0)

    def test_trace_roundtrip(self, tmp_path):
        schedule = (
            FaultSchedule(seed=9)
            .kill_primary(100)
            .stall(50, 1, 16)
            .kill_backup(200)
        )
        path = tmp_path / "faults.txt"
        save_faults(schedule, path)
        loaded = load_faults(path)
        assert loaded.seed == 9
        assert [(e.cycle, e.kind) for e in loaded.events] == [
            (50, FaultKind.STALL),
            (100, FaultKind.KILL_PRIMARY),
            (200, FaultKind.KILL_BACKUP),
        ]

    def test_serve_rejects_process_kill_schedules(self, tmp_path, capsys):
        table = tmp_path / "table.txt"
        save_table([(Prefix.parse("10.0.0.0/8"), 1)], table)
        faults = tmp_path / "faults.txt"
        save_faults(FaultSchedule().kill_primary(10), faults)
        code = main(
            ["serve", "--table", str(table), "--faults", str(faults)]
        )
        assert code == 2
        assert "chaos" in capsys.readouterr().err

    def test_process_kinds_frozen(self):
        assert PROCESS_KINDS == {
            FaultKind.KILL_PRIMARY,
            FaultKind.KILL_BACKUP,
        }


class TestReferenceModel:
    def test_apply_mirrors_announce_and_withdraw(self):
        trie = BinaryTrie()
        prefix = Prefix.parse("10.0.0.0/8")
        apply_to_reference(
            trie, [UpdateMessage(UpdateKind.ANNOUNCE, prefix, 7, 0.0)]
        )
        assert trie.lookup(prefix.network) == 7
        apply_to_reference(
            trie, [UpdateMessage(UpdateKind.WITHDRAW, prefix, None, 1.0)]
        )
        assert trie.lookup(prefix.network) is None


class TestCampaign:
    def test_unknown_scenario_is_an_error(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_campaign(ChaosConfig(quick=True), scenarios=["no-such"])

    def test_kill_during_promotion_scenario_end_to_end(self, tmp_path):
        """One real scenario: kill the primary, kill the backup while it
        promotes, restore the backup's epoch journal, verify all three
        invariants (zero acked loss, LPM equality, byte-identical
        replay).  Subprocess replicas bind port 0 and their ports are
        parsed from the startup line."""
        config = ChaosConfig(quick=True, workdir=tmp_path / "chaos")
        results = run_campaign(
            config, scenarios=["kill-during-promotion"], log=lambda _m: None
        )
        assert len(results) == 1
        result = results[0]
        assert result.ok, result.detail
        assert result.acked_batches == config.batches
        assert result.fingerprint_match is True
        assert result.checked_addresses > 0
