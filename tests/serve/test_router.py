"""Shard planning: range boundaries, replication, LPM equivalence."""

import pytest

from repro.net.prefix import Prefix
from repro.serve.router import plan_shards
from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator


class TestPlanShards:
    def test_single_shard_takes_everything(self, serve_rib):
        plan = plan_shards(serve_rib, 1)
        assert plan.router.boundaries == [0]
        assert plan.routes_per_shard == [list(serve_rib)]

    def test_boundaries_cover_address_zero(self, serve_rib):
        plan = plan_shards(serve_rib, 4)
        assert plan.router.boundaries[0] == 0
        assert plan.router.shard_count == 4
        assert plan.router.boundaries == sorted(plan.router.boundaries)

    def test_every_route_lands_in_each_covering_shard(self, serve_rib):
        plan = plan_shards(serve_rib, 4)
        for prefix, hop in serve_rib:
            covering = plan.router.shards_covering(prefix)
            for shard in range(plan.router.shard_count):
                present = (prefix, hop) in plan.routes_per_shard[shard]
                assert present == (shard in covering)

    def test_default_route_replicates_everywhere(self, serve_rib):
        routes = list(serve_rib) + [(Prefix.parse("0.0.0.0/0"), 99)]
        plan = plan_shards(routes, 3)
        for subset in plan.routes_per_shard:
            assert (Prefix.parse("0.0.0.0/0"), 99) in subset
        assert plan.replicated_routes >= 2

    def test_shard_local_lpm_equals_global_lpm(self, serve_rib):
        """The core invariant: home-shard longest match == global match."""
        plan = plan_shards(serve_rib, 4)
        reference = BinaryTrie.from_routes(serve_rib)
        tries = [
            BinaryTrie.from_routes(subset) for subset in plan.routes_per_shard
        ]
        for address in TrafficGenerator(serve_rib, seed=7).take(2_000):
            home = plan.router.shard_of(address)
            assert tries[home].lookup(address) == reference.lookup(address)

    def test_rejects_bad_inputs(self, serve_rib):
        with pytest.raises(ValueError):
            plan_shards(serve_rib, 0)
        with pytest.raises(ValueError):
            plan_shards([], 1)
        with pytest.raises(ValueError):
            plan_shards(serve_rib[:4], 10_000)
