"""Shard planning: range boundaries, replication, LPM equivalence."""

import pytest

from repro.net.prefix import Prefix
from repro.serve.router import ReplicaMap, ShardRouter, plan_shards
from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator


class TestPlanShards:
    def test_single_shard_takes_everything(self, serve_rib):
        plan = plan_shards(serve_rib, 1)
        assert plan.router.boundaries == [0]
        assert plan.routes_per_shard == [list(serve_rib)]

    def test_boundaries_cover_address_zero(self, serve_rib):
        plan = plan_shards(serve_rib, 4)
        assert plan.router.boundaries[0] == 0
        assert plan.router.shard_count == 4
        assert plan.router.boundaries == sorted(plan.router.boundaries)

    def test_every_route_lands_in_each_covering_shard(self, serve_rib):
        plan = plan_shards(serve_rib, 4)
        for prefix, hop in serve_rib:
            covering = plan.router.shards_covering(prefix)
            for shard in range(plan.router.shard_count):
                present = (prefix, hop) in plan.routes_per_shard[shard]
                assert present == (shard in covering)

    def test_default_route_replicates_everywhere(self, serve_rib):
        routes = list(serve_rib) + [(Prefix.parse("0.0.0.0/0"), 99)]
        plan = plan_shards(routes, 3)
        for subset in plan.routes_per_shard:
            assert (Prefix.parse("0.0.0.0/0"), 99) in subset
        assert plan.replicated_routes >= 2

    def test_shard_local_lpm_equals_global_lpm(self, serve_rib):
        """The core invariant: home-shard longest match == global match."""
        plan = plan_shards(serve_rib, 4)
        reference = BinaryTrie.from_routes(serve_rib)
        tries = [
            BinaryTrie.from_routes(subset) for subset in plan.routes_per_shard
        ]
        for address in TrafficGenerator(serve_rib, seed=7).take(2_000):
            home = plan.router.shard_of(address)
            assert tries[home].lookup(address) == reference.lookup(address)

    def test_rejects_bad_inputs(self, serve_rib):
        with pytest.raises(ValueError):
            plan_shards(serve_rib, 0)
        with pytest.raises(ValueError):
            plan_shards([], 1)
        with pytest.raises(ValueError):
            plan_shards(serve_rib[:4], 10_000)


class TestShardRouterEdges:
    """Address-space extremes and degenerate plans."""

    def test_address_zero_homes_in_shard_zero(self):
        router = ShardRouter([0, 1 << 16, 1 << 24])
        assert router.shard_of(0) == 0

    def test_max_address_homes_in_last_shard(self):
        router = ShardRouter([0, 1 << 16, 1 << 24])
        assert router.shard_of((1 << 32) - 1) == router.shard_count - 1

    def test_boundary_address_belongs_to_the_right_hand_shard(self):
        router = ShardRouter([0, 1 << 16])
        assert router.shard_of((1 << 16) - 1) == 0
        assert router.shard_of(1 << 16) == 1

    def test_single_shard_router_covers_everything(self):
        router = ShardRouter([0])
        assert router.shard_of(0) == 0
        assert router.shard_of((1 << 32) - 1) == 0
        everything = router.shards_covering(Prefix.parse("0.0.0.0/0"))
        assert list(everything) == [0]

    def test_default_route_spans_every_shard(self):
        router = ShardRouter([0, 1 << 10, 1 << 20, 1 << 30])
        spanned = router.shards_covering(Prefix.parse("0.0.0.0/0"))
        assert list(spanned) == list(range(router.shard_count))

    def test_host_prefix_spans_exactly_its_home_shard(self):
        router = ShardRouter([0, 1 << 16])
        prefix = Prefix.parse("0.0.0.7/32")
        assert list(router.shards_covering(prefix)) == [router.shard_of(7)]

    def test_epoch_defaults_to_one_and_rejects_zero(self):
        assert ShardRouter([0]).epoch == 1
        assert ShardRouter([0], epoch=5).epoch == 5
        with pytest.raises(ValueError):
            ShardRouter([0], epoch=0)
        with pytest.raises(ValueError):
            ShardRouter([0], epoch=-3)


class TestReplicaMapParse:
    def test_host_defaults_to_loopback(self):
        parsed = ReplicaMap.parse("4000")
        assert parsed.endpoints[0].host == "127.0.0.1"
        assert parsed.endpoints[0].port == 4000

    def test_parses_multiple_endpoints_and_skips_blanks(self):
        parsed = ReplicaMap.parse("a:1, b:2, ,c:3")
        assert [(e.host, e.port) for e in parsed.endpoints] == [
            ("a", 1), ("b", 2), ("c", 3)
        ]

    @pytest.mark.parametrize(
        "spec", ["", "   ", ",", ",,,"],
    )
    def test_rejects_empty_specs(self, spec):
        with pytest.raises(ValueError):
            ReplicaMap.parse(spec)

    @pytest.mark.parametrize(
        "spec", ["host:", "host:notaport", "a:1,b:", "a:1,:x", "1.2.3.4:7f"],
    )
    def test_rejects_malformed_ports(self, spec):
        with pytest.raises(ValueError):
            ReplicaMap.parse(spec)
