"""Journal-shipping replication: watermarks, ack modes, promotion.

Every test runs a real primary/backup pair of :class:`ServerThread`
instances over loopback TCP — the same wire protocol, framing and
promotion state machine the cluster chaos campaign exercises with full
processes, minus the SIGKILL (that part only exists at process level
and lives in ``repro-clue chaos``).
"""

import time

import pytest

from repro.serve import (
    HAClient,
    JournalShipper,
    ReplicaMap,
    ReplicationConfig,
    ReplicationError,
    ServeClient,
    ServeClientError,
    ServeConfig,
    ServerThread,
    ShardSet,
)
from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateKind


def start_backup(tmp_path, auto_promote=False, name="backup"):
    thread = ServerThread(
        None,
        ServeConfig(backup_dir=str(tmp_path / name), auto_promote=auto_promote),
    )
    return thread, thread.start()


def start_primary(
    tmp_path,
    serve_rib,
    fast_config,
    backup_port,
    ack_mode="quorum",
    shards=1,
    name="primary",
):
    shard_set = ShardSet.build(
        serve_rib,
        shard_count=shards,
        config=fast_config,
        journal_dir=tmp_path / name,
        sync_interval=4,
    )
    thread = ServerThread(
        shard_set,
        ServeConfig(
            replicate_to=f"127.0.0.1:{backup_port}",
            ack_mode=ack_mode,
            heartbeat_interval=0.1,
        ),
    )
    return thread, thread.start()


def wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestQuorumAcks:
    def test_ack_means_applied_on_both_replicas(
        self, tmp_path, serve_rib, fast_config
    ):
        """A quorum ack carries replicated=True and never claims more
        than the backup has applied: after every ack the primary's
        shipped and acked watermarks are equal, and the backup's applied
        sequence numbers match them exactly."""
        backup, backup_port = start_backup(tmp_path)
        primary, primary_port = start_primary(
            tmp_path, serve_rib, fast_config, backup_port
        )
        try:
            generator = UpdateGenerator(serve_rib, seed=11)
            with ServeClient("127.0.0.1", primary_port) as client:
                for _ in range(3):
                    ack = client.update(generator.take(16))
                    assert ack.durable is True
                    assert ack.replicated is True
                health = client.health()
            assert health["role"] == "primary"
            replication = health["replication"]
            assert replication["alive"] is True
            assert replication["acked"] == replication["shipped"]
            with ServeClient("127.0.0.1", backup_port) as admin:
                backup_health = admin.health()
            assert backup_health["role"] == "following"
            assert (
                backup_health["replication"]["applied_seqs"]
                == replication["shipped"]
            )
            assert backup_health["replication"]["records_applied"] > 0
        finally:
            primary.stop()
            backup.stop()

    def test_backup_serves_identical_state_after_failover(
        self, tmp_path, serve_rib, fast_config
    ):
        """Admin failover: the promoted backup answers exactly what the
        primary would — byte-identical fingerprints, identical LPM."""
        backup, backup_port = start_backup(tmp_path)
        primary, primary_port = start_primary(
            tmp_path, serve_rib, fast_config, backup_port
        )
        try:
            generator = UpdateGenerator(serve_rib, seed=12)
            with ServeClient("127.0.0.1", primary_port) as client:
                for _ in range(2):
                    client.update(generator.take(16))
                primary_fp = client.fingerprint()
            with ServeClient("127.0.0.1", backup_port) as admin:
                result = admin.failover()
                assert result["promoted"] is True
                assert result["fingerprints_verified"] is True
                assert admin.health()["role"] == "primary"
                assert admin.fingerprint() == primary_fp
        finally:
            primary.stop()
            backup.stop()


class TestPrimaryAckMode:
    def test_acks_immediately_and_catches_up_async(
        self, tmp_path, serve_rib, fast_config
    ):
        """ack_mode=primary: the ack never claims replication, and the
        heartbeat loop ships the backlog shortly after."""
        backup, backup_port = start_backup(tmp_path)
        primary, primary_port = start_primary(
            tmp_path, serve_rib, fast_config, backup_port, ack_mode="primary"
        )
        try:
            generator = UpdateGenerator(serve_rib, seed=13)
            with ServeClient("127.0.0.1", primary_port) as client:
                ack = client.update(generator.take(16))
                assert ack.durable is True
                assert ack.replicated is False

                def caught_up():
                    replication = client.health()["replication"]
                    return replication["acked"] == replication["shipped"]

                assert wait_until(caught_up), "backup never caught up"
        finally:
            primary.stop()
            backup.stop()


class TestPromotion:
    def test_feed_eof_promotes_and_client_fails_over(
        self, tmp_path, serve_rib, fast_config
    ):
        """When the primary goes away the backup takes over the range
        and an HAClient finds it without losing any acked update."""
        backup, backup_port = start_backup(tmp_path, auto_promote=True)
        primary, primary_port = start_primary(
            tmp_path, serve_rib, fast_config, backup_port
        )
        reference = BinaryTrie.from_routes(serve_rib)
        generator = UpdateGenerator(serve_rib, seed=14)
        ha = HAClient(
            ReplicaMap.parse(f"127.0.0.1:{primary_port},127.0.0.1:{backup_port}")
        )
        try:
            for _ in range(2):
                batch = generator.take(16)
                assert ha.update(batch).durable
                for message in batch:
                    if message.kind is UpdateKind.ANNOUNCE:
                        reference.insert(message.prefix, message.next_hop)
                    else:
                        reference.remove_route(message.prefix)
            primary.stop()  # graceful handoff: drain ships the tail

            def promoted():
                try:
                    with ServeClient("127.0.0.1", backup_port) as admin:
                        return admin.health()["role"] == "primary"
                except (ServeClientError, OSError):
                    return False

            assert wait_until(promoted), "backup never promoted"
            addresses = TrafficGenerator(serve_rib, seed=15).take(256)
            hops = ha.lookup(addresses)
            assert ha.failovers >= 1
            assert hops == [reference.lookup(a) for a in addresses]
        finally:
            ha.close()
            backup.stop()

    def test_promoted_backup_refuses_re_bootstrap(
        self, tmp_path, serve_rib, fast_config
    ):
        """Split-brain guard: once promoted, a backup never silently
        demotes itself because some new primary dials in."""
        backup, backup_port = start_backup(tmp_path)
        primary, primary_port = start_primary(
            tmp_path, serve_rib, fast_config, backup_port
        )
        try:
            with ServeClient("127.0.0.1", backup_port) as admin:
                assert admin.failover()["promoted"] is True
            with pytest.raises(ReplicationError, match="refusing demotion"):
                start_primary(
                    tmp_path,
                    serve_rib,
                    fast_config,
                    backup_port,
                    name="primary2",
                )
        finally:
            primary.stop()
            backup.stop()


class TestShipperPreconditions:
    def test_replication_requires_durable_shards(
        self, serve_rib, fast_config
    ):
        """Journal shipping without a journal is a config error."""
        shard_set = ShardSet.build(serve_rib, config=fast_config)
        with pytest.raises(ValueError, match="journal"):
            JournalShipper("127.0.0.1", 1, shard_set, ReplicationConfig())

    def test_ack_mode_is_validated(self):
        with pytest.raises(ValueError, match="ack_mode"):
            ReplicationConfig(ack_mode="eventual")
