"""The `repro serve` process: SIGTERM drain and the kill -9 crash drill.

These run the real CLI in a subprocess — the same artifact CI's
serve-smoke job exercises — because signal handling, the port file and
the process exit code only exist at that level.
"""

import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import SystemConfig
from repro.engine.simulator import EngineConfig
from repro.net.prefix import Prefix
from repro.serve import ServeClient, ShardSet
from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.traces import save_table
from repro.workload.updategen import UpdateGenerator, UpdateKind, UpdateMessage

REPO_ROOT = Path(__file__).resolve().parents[2]


def cli_config(update_queue=256):
    """The SystemConfig `repro serve` builds from its default flags."""
    return SystemConfig(
        engine=EngineConfig(
            chip_count=4,
            dred_capacity=1_024,
            queue_capacity=256,
            lookup_backend="fast",
        ),
        update_queue_capacity=update_queue,
    )


@pytest.fixture(scope="module")
def table_file(serve_rib, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-cli") / "rib.txt"
    save_table(serve_rib, path)
    return path


#: Every drill binds port 0; the bound port comes from this startup
#: line, so no port files and no fixed ports anywhere in the tests.
STARTUP_RE = re.compile(r"serving on \S*?:(\d+)")


def spawn_server(tmp_path, *extra_args):
    """Start `python -m repro serve` on port 0 and parse the bound port
    from the startup line.

    Lines printed before the startup banner (e.g. restore recovery
    reports) are kept on ``process.startup_lines`` for assertions.
    """
    del tmp_path  # kept for call-site symmetry with the old port-file API
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    process.startup_lines = []
    for line in process.stdout:
        process.startup_lines.append(line)
        match = STARTUP_RE.search(line)
        if match:
            return process, int(match.group(1))
    raise AssertionError(
        "server died during startup:\n"
        + "".join(process.startup_lines)
        + process.stderr.read()
    )


def finish(process, timeout=60):
    """Wait for exit, returning (returncode, stdout, stderr)."""
    stdout, stderr = process.communicate(timeout=timeout)
    return process.returncode, stdout, stderr


class TestSigtermDrain:
    def test_serve_lookup_update_sigterm(
        self, serve_rib, table_file, tmp_path
    ):
        """The acceptance smoke: serve, query, update durably, drain."""
        state = tmp_path / "state"
        process, port = spawn_server(
            tmp_path,
            "--table", str(table_file),
            "--shards", "2",
            "--journal", str(state),
        )
        updates = [
            UpdateMessage(
                UpdateKind.ANNOUNCE, Prefix.parse("192.0.2.0/24"), 55, 0.0
            )
        ]
        try:
            with ServeClient("127.0.0.1", port) as client:
                assert client.health()["durable"] is True
                reference = BinaryTrie.from_routes(serve_rib)
                addresses = TrafficGenerator(serve_rib, seed=41).take(1_024)
                assert client.lookup(addresses) == [
                    reference.lookup(address) for address in addresses
                ]
                ack = client.update(updates)
                assert ack.durable is True and ack.accepted >= 1
        finally:
            process.send_signal(signal.SIGTERM)
        returncode, _stdout, stderr = finish(process)
        assert returncode == 0, stderr

        # The journal survived the drain and replays to exactly the
        # state a fresh system reaches serving the same traffic and
        # applying the acked updates (lookups matter too: they populate
        # DRed, which is part of the state fingerprint).
        restored, _ = ShardSet.restore(state, config=cli_config())
        expected = ShardSet.build(serve_rib, shard_count=2, config=cli_config())
        expected.lookup(addresses)
        expected.update(updates)
        expected.drain()
        assert restored.fingerprint() == expected.fingerprint()
        assert restored.lookup([Prefix.parse("192.0.2.0/24").network]) == [55]


class TestCrashDrill:
    def test_kill_nine_mid_storm_restore_matches_reference(
        self, serve_rib, table_file, tmp_path
    ):
        """kill -9 during an update storm loses nothing acked.

        A small pump budget plus a small scheduler queue keep the
        server in storm mode (sheds, deferred diffs) while batches are
        acked; the journal must replay to the exact same state.
        """
        state = tmp_path / "state"
        serve_args = (
            "--journal", str(state),
            "--update-queue", "32",
            "--pump-budget", "2",
        )
        process, port = spawn_server(
            tmp_path, "--table", str(table_file), "--shards", "2", *serve_args
        )
        batches = [
            UpdateGenerator(serve_rib, seed=43).take(24) for _ in range(6)
        ]
        sheds = 0
        try:
            with ServeClient("127.0.0.1", port) as client:
                for batch in batches:
                    ack = client.update(batch)
                    assert ack.durable is True
                    sheds += ack.shed
        finally:
            process.kill()  # SIGKILL: no drain, no final checkpoint
        assert finish(process)[0] != 0
        assert sheds > 0, "drill never entered overload; tighten the knobs"

        restarted, port = spawn_server(tmp_path, "--restore", *serve_args)
        try:
            with ServeClient("127.0.0.1", port) as client:
                restored_fp = client.fingerprint()
                assert client.health()["shards"] == 2
        finally:
            restarted.send_signal(signal.SIGTERM)
        returncode, stdout, stderr = finish(restarted)
        assert returncode == 0, stderr
        banner = "".join(restarted.startup_lines) + stdout
        assert "restored" in banner or "replay" in banner.lower()

        reference = ShardSet.build(
            serve_rib, shard_count=2, config=cli_config(update_queue=32)
        )
        for batch in batches:
            reference.update(batch, pump_budget=2)
        assert reference.fingerprint() == restored_fp


class TestModuleEntryPoint:
    def test_python_dash_m_version(self):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert result.stdout.startswith("repro-clue ")
