"""No chaos code path may strand a live server subprocess.

The historical bug: :class:`ServerProcess` started its stdout reader
thread *after* the ``Popen``; if that setup raised (thread limit hit,
allocation failure), the constructor propagated the exception with the
child alive and unrecorded — no teardown path knew its PID.  These tests
pin the fix: a failure anywhere between ``Popen`` and a registered
process must reap the child before the exception escapes.
"""

import threading

import pytest

from repro.serve import chaos
from repro.serve.chaos import ChaosError, ServerProcess


class _RecordingPopen:
    """Stub child: records lifecycle calls, reports liveness honestly."""

    spawned = []

    def __init__(self, *args, **kwargs):
        self.killed = False
        self.waited = False
        self.stdout = None
        _RecordingPopen.spawned.append(self)

    def poll(self):
        return 1 if self.killed else None

    def kill(self):
        self.killed = True

    def wait(self, timeout=None):
        self.waited = True
        return 1


@pytest.fixture(autouse=True)
def _fresh_spawn_log():
    _RecordingPopen.spawned = []
    yield


def test_reader_thread_failure_reaps_the_child(monkeypatch):
    monkeypatch.setattr(chaos.subprocess, "Popen", _RecordingPopen)

    class ExplodingThread(threading.Thread):
        def start(self):
            raise RuntimeError("can't start new thread")

    monkeypatch.setattr(chaos.threading, "Thread", ExplodingThread)
    with pytest.raises(RuntimeError, match="can't start new thread"):
        ServerProcess("doomed", ["serve", "--port", "0"])
    assert len(_RecordingPopen.spawned) == 1
    child = _RecordingPopen.spawned[0]
    assert child.killed, "child left running after mid-setup failure"
    assert child.waited, "child killed but never reaped (zombie)"


def test_successful_setup_does_not_kill(monkeypatch):
    monkeypatch.setattr(chaos.subprocess, "Popen", _RecordingPopen)

    class InertThread(threading.Thread):
        def start(self):  # never touches the stub's stdout
            pass

    monkeypatch.setattr(chaos.threading, "Thread", InertThread)
    proc = ServerProcess("fine", ["serve", "--port", "0"])
    assert proc.alive
    assert not _RecordingPopen.spawned[0].killed


def test_cluster_shutdown_reaps_every_process_despite_errors(tmp_path):
    cluster = chaos.Cluster(
        chaos.ChaosConfig(quick=True), "reap-test", tmp_path
    )

    class FlakyKill:
        def __init__(self, name, fail):
            self.name = name
            self.fail = fail
            self.killed = False

        def kill(self):
            if self.fail:
                raise OSError("kill refused")
            self.killed = True

    good_a = FlakyKill("a", fail=False)
    bad = FlakyKill("b", fail=True)
    good_c = FlakyKill("c", fail=False)
    cluster.procs[:] = [good_a, bad, good_c]
    with pytest.raises(ChaosError, match="b: kill refused"):
        cluster.shutdown()
    # The failing middle process must not strand its successors.
    assert good_a.killed and good_c.killed


def test_cluster_is_a_context_manager(tmp_path):
    killed = []

    class Stub:
        name = "stub"

        def kill(self):
            killed.append(self)

    with chaos.Cluster(
        chaos.ChaosConfig(quick=True), "ctx-test", tmp_path
    ) as cluster:
        cluster.procs.append(Stub())
    assert len(killed) == 1
