"""Shared fixtures for the serving-plane tests."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.engine.simulator import EngineConfig
from repro.workload.ribgen import RibParameters, generate_rib


@pytest.fixture(scope="session")
def serve_rib():
    """A small table every serve test shares (build cost dominates)."""
    return generate_rib(3, RibParameters(size=1_000))


@pytest.fixture()
def fast_config():
    """Fast-backend CLUE settings sized for quick test builds."""
    return SystemConfig(engine=EngineConfig(lookup_backend="fast"))
