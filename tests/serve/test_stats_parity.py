"""Stats round-trips and the serve-vs-in-process fingerprint pin.

The regression pin is the contract the admin endpoint rests on: the
numbers a client reads over the wire are byte-for-byte the numbers the
in-process system would report for the same workload — serialization
loses nothing and the serving layer perturbs nothing.
"""

import json

import pytest

from repro.core.metrics import RecoveryStats
from repro.core.system import ClueSystem
from repro.engine.stats import EngineStats
from repro.serve import ServeClient, ServeConfig, ServerThread, ShardSet
from repro.workload.trafficgen import TrafficGenerator


class TestRoundTrips:
    def test_engine_stats_json_round_trip(self, serve_rib, fast_config):
        system = ClueSystem(serve_rib, fast_config)
        system.process_lookups(
            TrafficGenerator(serve_rib, seed=29).take(512)
        )
        stats = system.engine.stats
        assert stats.completions == 512

        wire = json.dumps(stats.as_dict())
        restored = EngineStats.from_dict(json.loads(wire))
        assert restored == stats
        assert restored.fingerprint() == stats.fingerprint()

    def test_engine_stats_from_dict_rejects_unknown_keys(self):
        data = EngineStats().as_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError):
            EngineStats.from_dict(data)

    def test_recovery_stats_round_trip(self):
        stats = RecoveryStats(
            journal_records=9, snapshots_written=2, replayed_updates=7
        )
        restored = RecoveryStats.from_dict(
            json.loads(json.dumps(stats.as_dict()))
        )
        assert restored == stats
        with pytest.raises(ValueError):
            RecoveryStats.from_dict({"nope": 1})

    def test_system_report_as_dict_is_json_ready(self, serve_rib, fast_config):
        system = ClueSystem(serve_rib, fast_config)
        system.process_lookups(TrafficGenerator(serve_rib, seed=31).take(64))
        report = system.report().as_dict()
        json.dumps(report)  # must not raise
        assert report["compression"]["original_entries"] == len(serve_rib)
        assert report["compression"]["mode"] == "DONT_CARE"
        assert report["engine_stats"]["completions"] == 64
        assert len(report["tcam_entries_per_chip"]) == (
            fast_config.engine.chip_count
        )


class TestServeParityPin:
    def test_stats_fingerprint_identical_serve_vs_inprocess(
        self, serve_rib, fast_config
    ):
        """Same workload, two transports, one fingerprint per shard."""
        batches = [
            TrafficGenerator(serve_rib, seed=37).take(256) for _ in range(4)
        ]

        served = ShardSet.build(serve_rib, shard_count=2, config=fast_config)
        with ServerThread(served, ServeConfig()) as thread:
            with ServeClient("127.0.0.1", thread.server.port) as conn:
                for batch in batches:
                    conn.lookup(batch)
                over_wire = conn.stats()["shards"]

        local = ShardSet.build(serve_rib, shard_count=2, config=fast_config)
        for batch in batches:
            local.lookup(batch)

        assert len(over_wire) == len(local.workers)
        for shard, worker in zip(over_wire, local.workers):
            wire_stats = EngineStats.from_dict(shard["engine_stats"])
            assert wire_stats.fingerprint() == (
                worker.system.engine.stats.fingerprint()
            )
