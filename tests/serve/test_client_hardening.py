"""Client failure handling: timeouts, bounded reconnect, redirects.

The serving client must never hang on a dead or silent server, and the
HA wrapper must distinguish pacing (BUSY "window", the caller's
problem) from placement (BUSY "draining"/"backup", retry elsewhere).
"""

import socket
import threading
import time

import pytest

from repro.serve import (
    HAClient,
    ReplicaMap,
    ServeClient,
    ServeConfig,
    ServerThread,
    ShardSet,
)
from repro.serve.client import (
    REDIRECT_REASONS,
    FailoverError,
    ReshardRedirect,
    ServeTimeoutError,
    ServerBusyError,
)
from repro.serve.protocol import Redirect


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestConnectRetry:
    def test_connection_refused_raises_after_bounded_attempts(self):
        port = free_port()  # released: nobody listens here
        started = time.monotonic()
        with pytest.raises(OSError):
            ServeClient(
                "127.0.0.1",
                port,
                connect_attempts=3,
                connect_backoff=0.02,
            )
        # Three attempts with 0.02 + 0.04 backoff — bounded, not a hang.
        assert time.monotonic() - started < 5.0

    def test_connect_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1", 1, connect_attempts=0)

    def test_reconnect_with_backoff_reaches_late_server(self):
        """A server that starts listening mid-backoff gets the dial."""
        port = free_port()
        accepted = threading.Event()

        def listen_late():
            time.sleep(0.15)
            with socket.socket() as server:
                server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                server.bind(("127.0.0.1", port))
                server.listen(1)
                conn, _ = server.accept()
                accepted.set()
                conn.close()

        thread = threading.Thread(target=listen_late, daemon=True)
        thread.start()
        client = ServeClient(
            "127.0.0.1",
            port,
            connect_attempts=20,
            connect_backoff=0.05,
        )
        client.close()
        thread.join(timeout=5)
        assert accepted.is_set()


class TestReadTimeout:
    def test_silent_server_surfaces_as_timeout_error(self):
        """A server that accepts but never answers must not hang the
        client: the read deadline turns it into ServeTimeoutError."""
        with socket.socket() as server:
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            port = server.getsockname()[1]
            client = ServeClient("127.0.0.1", port, timeout=0.2)
            try:
                with pytest.raises(ServeTimeoutError):
                    client.lookup([0x01010101])
            finally:
                client.close()


class TestRedirectClassification:
    def test_window_is_not_a_redirect_reason(self):
        assert "window" not in REDIRECT_REASONS
        assert REDIRECT_REASONS == {"draining", "backup", "resharding"}

    def test_ha_client_reraises_window_busy(
        self, serve_rib, fast_config
    ):
        """Pacing pushback propagates to the caller instead of burning
        the failover budget on a healthy primary."""
        shards = ShardSet.build(serve_rib, config=fast_config)
        with ServerThread(shards, ServeConfig()) as thread:
            ha = HAClient(f"127.0.0.1:{thread.server.port}")
            try:
                ha.connect()

                def always_window(_client):
                    raise ServerBusyError("window")

                with pytest.raises(ServerBusyError):
                    ha._with_failover(always_window)
                assert ha.failovers == 0
            finally:
                ha.close()
            thread.stop()

    def test_redirect_reasons_exhaust_into_failover_error(
        self, serve_rib, fast_config
    ):
        """draining/backup BUSYs re-resolve the primary; when nobody
        else serves, the bounded budget ends in FailoverError."""
        shards = ShardSet.build(serve_rib, config=fast_config)
        with ServerThread(shards, ServeConfig()) as thread:
            ha = HAClient(
                f"127.0.0.1:{thread.server.port}",
                failover_attempts=3,
                failover_backoff=0.01,
            )
            try:
                ha.connect()

                def always_draining(_client):
                    raise ServerBusyError("draining")

                with pytest.raises(FailoverError):
                    ha._with_failover(always_draining)
                assert ha.failovers >= 1
            finally:
                ha.close()
            thread.stop()


    def test_reshard_redirect_refreshes_the_replica_map(
        self, serve_rib, fast_config
    ):
        """MSG_REDIRECT carries the mid-cutover replica rows; the HA
        wrapper folds them into its map before retrying."""
        shards = ShardSet.build(serve_rib, config=fast_config)
        with ServerThread(shards, ServeConfig()) as thread:
            port = thread.server.port
            ha = HAClient(
                f"127.0.0.1:{port}",
                failover_attempts=3,
                failover_backoff=0.01,
            )
            try:
                ha.connect()
                redirect = Redirect(
                    reason="resharding",
                    epoch=2,
                    replicas=[["127.0.0.1", port, "primary"]],
                )
                calls = []

                def redirect_once(client):
                    calls.append(1)
                    if len(calls) == 1:
                        raise ReshardRedirect(redirect)
                    return client.lookup([0x01010101])

                ha._with_failover(redirect_once)
                assert len(calls) == 2
                assert ha.failovers == 1
                assert ha.replicas.primary() is not None
            finally:
                ha.close()
            thread.stop()


class TestConnectJitter:
    def test_connect_backoff_is_jittered(self, monkeypatch):
        """Fleet restarts must not dial back in lockstep: each backoff
        sleep is scaled by a random factor in [0.5, 1.5)."""
        import repro.serve.client as client_module

        sleeps = []
        monkeypatch.setattr(
            client_module.time, "sleep", lambda s: sleeps.append(s)
        )
        monkeypatch.setattr(client_module.random, "random", lambda: 0.25)
        port = free_port()  # nobody listens: every attempt fails
        with pytest.raises(OSError):
            ServeClient(
                "127.0.0.1",
                port,
                connect_attempts=3,
                connect_backoff=0.08,
            )
        # Two sleeps between three attempts, each scaled by 0.5 + 0.25.
        assert sleeps == [
            pytest.approx(0.08 * 0.75),
            pytest.approx(0.16 * 0.75),
        ]


class TestReplicaMapResolution:
    def test_no_primary_anywhere_is_failover_error(self):
        replicas = ReplicaMap.parse(f"127.0.0.1:{free_port()}")
        ha = HAClient(replicas, failover_attempts=1, failover_backoff=0.01)
        with pytest.raises(FailoverError):
            ha.connect()
        assert replicas.endpoints[0].role == "dead"
