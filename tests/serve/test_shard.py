"""ShardSet: sharded lookups/updates, durable build + crash + restore."""

import json

import pytest

from repro.net.prefix import Prefix
from repro.serve.shard import META_FILE, ShardSet
from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateKind, UpdateMessage


def announce(text, hop, ts=0.0):
    return UpdateMessage(UpdateKind.ANNOUNCE, Prefix.parse(text), hop, ts)


def withdraw(text, ts=0.0):
    return UpdateMessage(UpdateKind.WITHDRAW, Prefix.parse(text), None, ts)


class TestLookups:
    @pytest.mark.parametrize("shard_count", [1, 3])
    def test_matches_reference_trie(self, serve_rib, fast_config, shard_count):
        shards = ShardSet.build(
            serve_rib, shard_count=shard_count, config=fast_config
        )
        reference = BinaryTrie.from_routes(serve_rib)
        addresses = TrafficGenerator(serve_rib, seed=11).take(2_048)
        expected = [reference.lookup(address) for address in addresses]
        assert shards.lookup(addresses) == expected

    def test_results_in_request_order(self, serve_rib, fast_config):
        shards = ShardSet.build(serve_rib, shard_count=3, config=fast_config)
        addresses = TrafficGenerator(serve_rib, seed=12).take(512)
        # Reversing the batch must reverse the answers: positions map
        # one-to-one even when the batch scatters across shards.
        forward = shards.lookup(addresses)
        assert shards.lookup(list(reversed(addresses))) == forward[::-1]


class TestUpdates:
    def test_announce_then_withdraw_visible_in_lookups(
        self, serve_rib, fast_config
    ):
        shards = ShardSet.build(serve_rib, shard_count=2, config=fast_config)
        prefix = "203.0.113.0/24"
        address = Prefix.parse(prefix).network + 7
        before = shards.lookup([address])[0]

        ack = shards.update([announce(prefix, 41)])
        assert ack.accepted >= 1 and ack.shed == 0 and not ack.durable
        shards.drain()
        assert shards.lookup([address]) == [41]

        shards.update([withdraw(prefix, ts=1.0)])
        shards.drain()
        assert shards.lookup([address]) == [before]

    def test_spanning_update_delivered_to_all_covering_shards(
        self, serve_rib, fast_config
    ):
        shards = ShardSet.build(serve_rib, shard_count=3, config=fast_config)
        ack = shards.update([announce("0.0.0.0/0", 77)])
        # One delivery per covering shard — all three for a default route.
        assert ack.accepted == 3
        shards.drain()
        probes = TrafficGenerator(serve_rib, seed=13).take(256)
        miss_address = next(
            a for a in range(2**32 - 1, 0, -1)
            if BinaryTrie.from_routes(serve_rib).lookup(a) is None
        )
        assert shards.lookup([miss_address]) == [77]
        assert None not in shards.lookup(probes)


class TestDurability:
    def test_meta_file_written_and_required(
        self, serve_rib, fast_config, tmp_path
    ):
        state = tmp_path / "state"
        shards = ShardSet.build(
            serve_rib, shard_count=2, config=fast_config, journal_dir=state
        )
        meta = json.loads((state / META_FILE).read_text())
        assert meta["shards"] == 2
        assert meta["boundaries"] == shards.router.boundaries
        assert shards.durable
        shards.drain()

        with pytest.raises(ValueError):
            ShardSet.restore(tmp_path / "nowhere")
        (state / META_FILE).write_text("{\"version\": 99}")
        with pytest.raises(ValueError):
            ShardSet.restore(state)

    def test_crash_and_restore_matches_reference_run(
        self, serve_rib, fast_config, tmp_path
    ):
        """Journal-before-apply: a hard crash loses nothing acked.

        Small pump budget + small queue hold the scheduler in storm mode
        so the drill exercises sheds and deferred diffs, not just the
        happy path.
        """
        from dataclasses import replace

        config = replace(fast_config, update_queue_capacity=32)
        batches = [
            UpdateGenerator(serve_rib, seed=21).take(24) for _ in range(6)
        ]

        live = ShardSet.build(
            serve_rib, shard_count=2, config=config,
            journal_dir=tmp_path / "state",
        )
        sheds = 0
        for batch in batches:
            sheds += live.update(batch, pump_budget=4).shed
        assert sheds > 0, "drill never entered overload; tighten the knobs"
        fp_live = live.fingerprint()
        for worker in live.workers:
            worker.manager.crash()

        restored, reports = ShardSet.restore(tmp_path / "state", config=config)
        assert len(reports) == 2
        assert restored.fingerprint() == fp_live

        reference = ShardSet.build(serve_rib, shard_count=2, config=config)
        for batch in batches:
            reference.update(batch, pump_budget=4)
        assert reference.fingerprint() == fp_live
