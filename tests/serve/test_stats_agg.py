"""Cross-process stats aggregation: serialize → ship → merge == local.

The multi-process front never touches a worker's counters directly — it
reads serialized snapshots off the control channel and folds them.  The
whole scheme is only honest if that fold is lossless: merged
:class:`ServeStats` must equal what one process would have counted, the
per-range hit rows must survive the JSON hop intact, and the reshard
policy must reach the same verdict from shipped counters as from live
in-process workers.
"""

import json

from repro.net.prefix import Prefix
from repro.serve import (
    ShardSet,
    choose_reshard,
    choose_reshard_from_loads,
    split_batches,
)
from repro.serve.chaos import shard_load_rows
from repro.serve.router import ShardRouter
from repro.serve.stats import ServeStats
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateKind, UpdateMessage


def _wire(obj):
    """The control-channel hop: everything crosses as JSON bytes."""
    return json.loads(json.dumps(obj))


class TestServeStatsRoundTrip:
    def test_as_dict_from_dict_is_identity(self):
        stats = ServeStats(
            requests_total=7,
            lookup_requests=3,
            lookups_total=3_072,
            updates_accepted=41,
            busy_responses=2,
            worker_crashes=1,
            worker_restarts=1,
        )
        assert ServeStats.from_dict(_wire(stats.as_dict())) == stats

    def test_from_dict_tolerates_skewed_builds(self):
        # A parent and worker from adjacent builds must still aggregate:
        # unknown keys are dropped, missing ones default to zero.
        data = {"lookups_total": 5, "counter_from_the_future": 9}
        stats = ServeStats.from_dict(data)
        assert stats.lookups_total == 5
        assert stats.requests_total == 0

    def test_merged_snapshots_equal_single_process_totals(self):
        per_worker = [
            ServeStats(requests_total=10, lookups_total=1_024, busy_responses=1),
            ServeStats(requests_total=4, lookups_total=512, updates_shed=3),
            ServeStats(requests_total=1, updates_accepted=8),
        ]
        single = ServeStats()
        for snapshot in per_worker:
            single.merge(snapshot)
        shipped = ServeStats.merged(
            _wire([snapshot.as_dict() for snapshot in per_worker])
        )
        assert shipped == single


class TestShardRowAggregation:
    def test_shipped_rows_reproduce_inprocess_hit_counters(
        self, serve_rib, fast_config
    ):
        shards = ShardSet.build(serve_rib, shard_count=3, config=fast_config)
        for seed in (5, 11):
            shards.lookup(TrafficGenerator(serve_rib, seed=seed).take(2_048))
        shards.update(
            [
                UpdateMessage(
                    UpdateKind.ANNOUNCE, Prefix.parse("198.51.100.0/24"), 7, 0.0
                )
            ]
        )
        rows = _wire(shards.stats())  # what STATS ships per worker

        assert [row["shard"] for row in rows] == [0, 1, 2]
        for row, worker in zip(rows, shards.workers):
            assert row["lookup_hits"] == worker.lookup_hits
            assert row["update_hits"] == worker.update_hits
        assert (
            sum(row["lookup_hits"] for row in rows) == 2 * 2_048
        ), "every address lands on exactly one shard"

        pruned = shard_load_rows(rows)
        assert {key for row in pruned for key in row} == {
            "shard", "range", "lookup_hits", "update_hits"
        }

    def test_reshard_policy_identical_over_shipped_counters(
        self, serve_rib, fast_config
    ):
        shards = ShardSet.build(serve_rib, shard_count=3, config=fast_config)
        # Concentrate traffic on shard 0's range to force a hot verdict.
        boundaries = shards.router.boundaries
        hot_addresses = [boundaries[1] // 2 + i for i in range(512)]
        for _ in range(4):
            shards.lookup(hot_addresses)
        shards.lookup(
            [boundaries[1] + 1, boundaries[2] + 1]
        )  # a trickle elsewhere

        live = choose_reshard(shards)
        rows = _wire(shards.stats())
        shipped = choose_reshard_from_loads(
            [row["lookup_hits"] + row["update_hits"] for row in rows]
        )
        assert live == shipped == ("split", 0)

    def test_reshard_policy_edge_verdicts(self):
        assert choose_reshard_from_loads([]) is None
        assert choose_reshard_from_loads([0, 0]) is None
        assert choose_reshard_from_loads([90, 5, 5]) == ("split", 0)
        # No hot shard, but an adjacent cold pair under the threshold.
        assert choose_reshard_from_loads([10, 5, 45, 40]) == ("merge", 0)
        assert choose_reshard_from_loads([50, 50]) is None


class TestSplitBatches:
    def test_split_preserves_order_and_assignment(self, serve_rib):
        boundaries = [0, 1 << 31, 3 << 30]
        router = ShardRouter(boundaries)
        batches = [
            TrafficGenerator(serve_rib, seed=seed).take(256)
            for seed in (3, 9, 27)
        ]
        per_shard = split_batches(batches, boundaries)

        assert len(per_shard) == len(boundaries)
        for shard, shard_batches in enumerate(per_shard):
            for sub in shard_batches:
                assert sub, "empty sub-batches are dropped"
                assert all(
                    router.shard_of(address) == shard for address in sub
                )
        # Nothing lost, nothing duplicated, per-shard order preserved.
        assert sorted(
            address
            for shard_batches in per_shard
            for sub in shard_batches
            for address in sub
        ) == sorted(address for batch in batches for address in batch)
        for shard, shard_batches in enumerate(per_shard):
            flattened = [
                address for sub in shard_batches for address in sub
            ]
            expected = [
                address
                for batch in batches
                for address in batch
                if router.shard_of(address) == shard
            ]
            assert flattened == expected
