"""Load generator: shed-reason accounting and replica-aware retries."""

from repro.serve import (
    ReplicaMap,
    ServeClient,
    ServeConfig,
    ServerThread,
    ShardSet,
    generate_batches,
    run_load,
)


class TestBusyAccounting:
    def test_backup_busy_counted_separately_without_replicas(
        self, tmp_path, serve_rib
    ):
        """Without a replica map a BUSY("backup") is terminal for its
        batch, and lands in busy_backup — not lumped into one counter."""
        backup = ServerThread(
            None,
            ServeConfig(backup_dir=str(tmp_path / "backup"), auto_promote=False),
        )
        port = backup.start()
        try:
            batches = generate_batches(serve_rib, 5, 16)
            report = run_load("127.0.0.1", port, batches)
        finally:
            backup.stop()
        assert report.lookups == 0
        assert report.busy_backup == 5
        assert report.busy == 5
        assert report.busy_draining == 0
        assert report.busy_window == 0
        assert report.failovers == 0

    def test_healthy_primary_serves_everything(self, serve_rib, fast_config):
        shards = ShardSet.build(serve_rib, config=fast_config)
        with ServerThread(shards, ServeConfig()) as thread:
            batches = generate_batches(serve_rib, 10, 32)
            report = run_load("127.0.0.1", thread.server.port, batches)
            thread.stop()
        assert report.lookups == 10 * 32
        assert report.busy == 0
        assert report.retried == 0

    def test_replica_map_resolves_past_the_backup(
        self, tmp_path, serve_rib, fast_config
    ):
        """Given a replica map whose first endpoint is a backup, the
        generator resolves the actual primary and completes the run."""
        backup = ServerThread(
            None,
            ServeConfig(backup_dir=str(tmp_path / "backup"), auto_promote=False),
        )
        backup_port = backup.start()
        shards = ShardSet.build(serve_rib, config=fast_config)
        primary = ServerThread(shards, ServeConfig())
        primary_port = primary.start()
        try:
            replicas = ReplicaMap.parse(
                f"127.0.0.1:{backup_port},127.0.0.1:{primary_port}"
            )
            batches = generate_batches(serve_rib, 6, 16)
            report = run_load(
                "127.0.0.1", backup_port, batches, replicas=replicas
            )
        finally:
            primary.stop()
            backup.stop()
        assert report.lookups == 6 * 16
        assert report.busy == 0
        # The map learned who is who along the way.
        roles = {e.port: e.role for e in replicas.endpoints}
        assert roles[primary_port] == "primary"


class TestDrainRedirect:
    def test_draining_server_sheds_with_reason(self, serve_rib, fast_config):
        """A draining server turns into busy_draining, not silent loss.

        The flag is set directly (a real drain also closes the
        listener, which would race the generator's dial) — the point is
        the per-reason accounting of the BUSY verdicts.
        """
        shards = ShardSet.build(serve_rib, config=fast_config)
        with ServerThread(shards, ServeConfig()) as thread:
            port = thread.server.port
            thread.server.draining = True
            batches = generate_batches(serve_rib, 4, 8)
            report = run_load("127.0.0.1", port, batches)
            thread.server.draining = False
            thread.stop()
        assert report.lookups == 0
        assert report.busy_draining == 4
        assert report.busy_backup == 0
