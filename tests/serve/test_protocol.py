"""Wire-protocol codecs: frames, payloads, caps and malformed input."""

import asyncio
import socket
import struct

import pytest

from repro.net.prefix import Prefix
from repro.serve import protocol
from repro.serve.protocol import (
    Frame,
    ProtocolError,
    UpdateAck,
    decode_addresses,
    decode_hops,
    decode_json,
    decode_text,
    decode_update_ack,
    decode_updates,
    encode_addresses,
    encode_frame,
    encode_hops,
    encode_json,
    encode_text,
    encode_update_ack,
    encode_updates,
    read_frame_blocking,
)
from repro.workload.updategen import UpdateKind, UpdateMessage


def roundtrip_blocking(data: bytes):
    """Push raw bytes through a socketpair and read frames back."""
    left, right = socket.socketpair()
    try:
        left.sendall(data)
        left.shutdown(socket.SHUT_WR)
        frames = []
        while True:
            frame = read_frame_blocking(right)
            if frame is None:
                return frames
            frames.append(frame)
    finally:
        left.close()
        right.close()


class TestFraming:
    def test_roundtrip_blocking(self):
        data = encode_frame(protocol.MSG_LOOKUP, 7, b"abc") + encode_frame(
            protocol.MSG_HEALTH, 8
        )
        frames = roundtrip_blocking(data)
        assert frames == [
            Frame(protocol.MSG_LOOKUP, 7, b"abc"),
            Frame(protocol.MSG_HEALTH, 8, b""),
        ]

    def test_roundtrip_async(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(protocol.MSG_STATS, 42, b"xy"))
            reader.feed_eof()
            first = await protocol.read_frame_async(reader)
            second = await protocol.read_frame_async(reader)
            return first, second

        first, second = asyncio.run(run())
        assert first == Frame(protocol.MSG_STATS, 42, b"xy")
        assert second is None

    def test_async_eof_mid_frame_raises(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(protocol.MSG_STATS, 1, b"full")[:6])
            reader.feed_eof()
            return await protocol.read_frame_async(reader)

        with pytest.raises(ProtocolError):
            asyncio.run(run())

    def test_blocking_eof_mid_frame_raises(self):
        with pytest.raises(ProtocolError):
            roundtrip_blocking(encode_frame(protocol.MSG_STATS, 1, b"full")[:6])

    def test_oversized_length_rejected(self):
        header = struct.pack(
            "!IBI", protocol.MAX_FRAME_BYTES + 6, protocol.MSG_LOOKUP, 0
        )
        with pytest.raises(ProtocolError):
            roundtrip_blocking(header)

    def test_undersized_length_rejected(self):
        with pytest.raises(ProtocolError):
            roundtrip_blocking(struct.pack("!IBI", 4, protocol.MSG_LOOKUP, 0))

    def test_encode_rejects_oversized_payload(self):
        class HugePayload(bytes):
            def __len__(self):
                return protocol.MAX_FRAME_BYTES + 1

        with pytest.raises(ProtocolError):
            encode_frame(protocol.MSG_LOOKUP, 0, HugePayload())


class TestPayloads:
    def test_addresses_roundtrip(self):
        addresses = [0, 1, 0xFFFFFFFF, 0x0A000001]
        assert decode_addresses(encode_addresses(addresses)) == addresses
        assert decode_addresses(b"") == []

    def test_addresses_misaligned(self):
        with pytest.raises(ProtocolError):
            decode_addresses(b"abc")

    def test_hops_roundtrip_with_misses(self):
        hops = [3, None, 0, 250]
        assert decode_hops(encode_hops(hops)) == hops

    def test_hops_misaligned(self):
        with pytest.raises(ProtocolError):
            decode_hops(b"abcde")

    def test_updates_roundtrip(self):
        messages = [
            UpdateMessage(
                UpdateKind.ANNOUNCE, Prefix.parse("10.1.0.0/16"), 5, 1.25
            ),
            UpdateMessage(
                UpdateKind.WITHDRAW, Prefix.parse("10.1.2.0/24"), None, 2.5
            ),
            UpdateMessage(UpdateKind.ANNOUNCE, Prefix.parse("0.0.0.0/0"), 1, 0.0),
        ]
        assert decode_updates(encode_updates(messages)) == messages

    def test_updates_bad_kind(self):
        payload = bytearray(encode_updates([
            UpdateMessage(UpdateKind.ANNOUNCE, Prefix.parse("1.0.0.0/8"), 1, 0.0)
        ]))
        payload[0] = 9
        with pytest.raises(ProtocolError):
            decode_updates(bytes(payload))

    def test_updates_bad_prefix(self):
        payload = struct.pack("!BIBid", 0, 0x0A000001, 8, 1, 0.0)
        with pytest.raises(ProtocolError):  # host bits below the mask
            decode_updates(payload)

    def test_updates_misaligned(self):
        with pytest.raises(ProtocolError):
            decode_updates(b"\x00" * 17)

    def test_update_ack_roundtrip(self):
        ack = UpdateAck(accepted=7, shed=2, applied=5, durable=True)
        assert decode_update_ack(encode_update_ack(ack)) == ack
        with pytest.raises(ProtocolError):
            decode_update_ack(b"\x00" * 5)

    def test_update_ack_carries_replication_flag(self):
        ack = UpdateAck(
            accepted=3, shed=0, applied=3, durable=True, replicated=True
        )
        decoded = decode_update_ack(encode_update_ack(ack))
        assert decoded == ack
        assert decoded.replicated is True
        # The default stays conservative: not replicated until proven.
        assert UpdateAck(1, 0, 1, True).replicated is False

    def test_json_and_text(self):
        assert decode_json(encode_json({"a": [1, 2]})) == {"a": [1, 2]}
        assert decode_text(encode_text("drainage")) == "drainage"
        with pytest.raises(ProtocolError):
            decode_json(b"{nope")
        with pytest.raises(ProtocolError):
            decode_text(b"\xff\xfe")


class TestReplicationFrames:
    def test_replicate_records_roundtrip(self):
        data = {
            "kind": protocol.REPLICATE_RECORDS,
            "shard": 1,
            "records": [[7, "offer", "announce 10.0.0.0/8 3"]],
        }
        assert protocol.decode_replicate(protocol.encode_replicate(data)) == data

    def test_replicate_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError):
            protocol.encode_replicate({"kind": "gossip"})
        with pytest.raises(ProtocolError):
            protocol.decode_replicate(encode_json({"kind": "gossip"}))

    def test_replicate_rejects_malformed_record_batch(self):
        with pytest.raises(ProtocolError):
            protocol.decode_replicate(
                encode_json(
                    {
                        "kind": protocol.REPLICATE_RECORDS,
                        "shard": 0,
                        "records": [["not-a-seq", "offer"]],
                    }
                )
            )

    def test_replicate_ack_roundtrip(self):
        ack = protocol.ReplicateAck(shard=2, applied_seq=41)
        decoded = protocol.decode_replicate_ack(
            protocol.encode_replicate_ack(ack)
        )
        assert decoded == ack
        with pytest.raises(ProtocolError):
            protocol.decode_replicate_ack(encode_json({"shard": 1}))

    def test_message_types_are_distinct(self):
        assert len(
            {
                protocol.MSG_REPLICATE,
                protocol.MSG_REPLICATE_OK,
                protocol.MSG_FAILOVER,
                protocol.MSG_UPDATE,
                protocol.MSG_DRAIN,
            }
        ) == 5
