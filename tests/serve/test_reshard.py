"""Live resharding: planning, the staged migration, crash resolution.

The chaos drills (``repro-clue chaos --scenario reshard-split-*``) cover
the subprocess SIGKILL matrix; these tests pin the in-process contract —
plan geometry, the coordinator's stage machine, the journaled
crash-resume matrix, and the server RPC wiring.
"""

import json
import shutil

import pytest

from repro.serve.reshard import (
    RESHARD_FILE,
    MigrationState,
    ReshardCoordinator,
    ReshardError,
    choose_reshard,
    epoch_dir_name,
    plan_merge,
    plan_split,
    read_state,
    resolve_reshard,
    write_state,
)
from repro.serve.shard import ShardSet
from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateKind


def build_set(serve_rib, config, tmp_path, shards=2, name="state"):
    return ShardSet.build(
        serve_rib, shard_count=shards, config=config,
        journal_dir=tmp_path / name,
    )


def mirror(reference, batch):
    for message in batch:
        if message.kind is UpdateKind.ANNOUNCE:
            reference.insert(message.prefix, message.next_hop)
        else:
            reference.remove_route(message.prefix)


def assert_covered_parity(shard_set, reference, seed=29, count=512):
    """Sampled *covered* addresses only: DONT_CARE compression answers
    arbitrarily for addresses no route covers, so random 32-bit probes
    would report false mismatches."""
    routes = list(reference.routes())
    addresses = TrafficGenerator(routes, seed=seed).take(count)
    expected = [reference.lookup(address) for address in addresses]
    assert shard_set.lookup(addresses) == expected


class TestPlanning:
    def test_split_inserts_one_boundary_inside_the_range(
        self, serve_rib, fast_config, tmp_path
    ):
        shards = build_set(serve_rib, fast_config, tmp_path)
        old = list(shards.router.boundaries)
        new = plan_split(shards, 0)
        assert len(new) == len(old) + 1
        assert new == sorted(new)
        assert old[0] < new[1] < old[1]
        assert new[0] == 0 and new[2:] == old[1:]
        shards.drain()

    def test_split_honours_an_explicit_cut(
        self, serve_rib, fast_config, tmp_path
    ):
        shards = build_set(serve_rib, fast_config, tmp_path)
        hi = shards.router.boundaries[1]
        assert plan_split(shards, 0, at=hi // 2)[1] == hi // 2
        with pytest.raises(ReshardError):
            plan_split(shards, 0, at=hi + 1)  # outside shard 0's range
        with pytest.raises(ReshardError):
            plan_split(shards, 0, at=0)  # degenerate empty left half
        with pytest.raises(ReshardError):
            plan_split(shards, 7)
        shards.drain()

    def test_merge_drops_the_shared_boundary(
        self, serve_rib, fast_config, tmp_path
    ):
        shards = build_set(serve_rib, fast_config, tmp_path, shards=3)
        old = list(shards.router.boundaries)
        assert plan_merge(shards, 0) == [old[0]] + old[2:]
        assert plan_merge(shards, 1) == old[:2]
        with pytest.raises(ReshardError):
            plan_merge(shards, 2)  # the last shard has no right neighbour
        shards.drain()

    def test_choose_reshard_reads_the_hit_counters(
        self, serve_rib, fast_config, tmp_path
    ):
        shards = build_set(serve_rib, fast_config, tmp_path, shards=4)
        workers = shards.workers
        assert choose_reshard(shards) is None  # zero load: no opinion

        workers[1].lookup_hits = 900
        for worker in (workers[0], workers[2], workers[3]):
            worker.lookup_hits = 50
        assert choose_reshard(shards) == ("split", 1)

        # Balanced load: neither hot enough to split nor cold enough
        # to merge.
        for worker in workers:
            worker.lookup_hits, worker.update_hits = 100, 0
        assert choose_reshard(shards) is None

        # Two busy shards, two idle neighbours: no shard is hot enough
        # to split alone, and the idle pair is cold enough to merge.
        for worker, hits in zip(workers, (50, 50, 450, 450)):
            worker.lookup_hits = hits
        assert choose_reshard(shards) == ("merge", 0)
        shards.drain()


class TestCoordinator:
    def test_split_preserves_lpm_and_replays_byte_identically(
        self, serve_rib, fast_config, tmp_path
    ):
        root = tmp_path / "state"
        shards = build_set(serve_rib, fast_config, tmp_path)
        reference = BinaryTrie.from_routes(serve_rib)
        generator = UpdateGenerator(serve_rib, seed=31)
        for _ in range(4):
            batch = generator.take(24)
            shards.update(batch)
            mirror(reference, batch)

        coordinator = ReshardCoordinator(shards, "split", 0)
        new_set = coordinator.run_to_completion()
        assert new_set.epoch == 2
        assert new_set.router.shard_count == 3
        assert coordinator.state.stage == "done"

        # Updates keep applying on the new topology.
        batch = generator.take(24)
        new_set.update(batch)
        mirror(reference, batch)
        new_set.flush()

        # Byte-identical replay across the epoch boundary: fingerprint
        # first (lookups mutate DRed), then restore a copy of the root —
        # restore must follow reshard.json into the epoch directory.
        live_fp = new_set.fingerprint()
        scratch = tmp_path / "scratch"
        shutil.copytree(root, scratch)
        restored, _reports = ShardSet.restore(scratch, config=fast_config)
        assert restored.epoch == 2
        assert restored.router.boundaries == new_set.router.boundaries
        assert restored.fingerprint() == live_fp

        assert_covered_parity(new_set, reference)
        assert_covered_parity(restored, reference)
        for target in (new_set, restored):
            for worker in target.workers:
                worker.manager.close()

    def test_merge_then_chained_restore(
        self, serve_rib, fast_config, tmp_path
    ):
        """split then merge: restore resolves the journal chain through
        nested epoch directories to the deepest committed topology."""
        root = tmp_path / "state"
        shards = build_set(serve_rib, fast_config, tmp_path, shards=2)
        reference = BinaryTrie.from_routes(serve_rib)

        three = ReshardCoordinator(shards, "split", 0).run_to_completion()
        assert three.epoch == 2 and three.router.shard_count == 3
        merged = ReshardCoordinator(three, "merge", 1).run_to_completion()
        assert merged.epoch == 3 and merged.router.shard_count == 2
        merged.flush()
        live_fp = merged.fingerprint()

        scratch = tmp_path / "scratch"
        shutil.copytree(root, scratch)
        restored, _reports = ShardSet.restore(scratch, config=fast_config)
        assert restored.epoch == 3
        assert restored.router.boundaries == merged.router.boundaries
        assert restored.fingerprint() == live_fp
        assert_covered_parity(restored, reference)
        for target in (merged, restored):
            for worker in target.workers:
                worker.manager.close()

    def test_abandoned_migration_rolls_back_on_restore(
        self, serve_rib, fast_config, tmp_path
    ):
        """A migration that dies pre-commit leaves only its journal; the
        next restore deletes the partial epoch and serves the old state."""
        root = tmp_path / "state"
        shards = build_set(serve_rib, fast_config, tmp_path)
        shards.flush()
        old_fp = shards.fingerprint()
        old_boundaries = list(shards.router.boundaries)

        coordinator = ReshardCoordinator(shards, "split", 0)
        coordinator.prepare()
        coordinator.copy()
        coordinator.begin_catchup()
        # "Crash": release the in-process handles without any stage
        # transition — on disk this is exactly a kill mid-catchup.
        for worker in coordinator.new_set.workers:
            worker.manager.close()
        for worker in shards.workers:
            worker.manager.end_shipping()

        scratch = tmp_path / "scratch"
        shutil.copytree(root, scratch)
        restored, _reports = ShardSet.restore(scratch, config=fast_config)
        assert restored.epoch == 1
        assert restored.router.boundaries == old_boundaries
        assert restored.fingerprint() == old_fp
        assert not (scratch / epoch_dir_name(2)).exists()
        assert read_state(scratch).stage == "rolled-back"
        for target in (shards, restored):
            for worker in target.workers:
                worker.manager.close()

    def test_abort_cleans_up_and_prepare_refuses_leftovers(
        self, serve_rib, fast_config, tmp_path
    ):
        root = tmp_path / "state"
        shards = build_set(serve_rib, fast_config, tmp_path)
        coordinator = ReshardCoordinator(shards, "split", 0)
        coordinator.prepare()
        coordinator.copy()
        coordinator.abort("test abort")
        assert coordinator.state.stage == "rolled-back"
        assert read_state(root).reason == "test abort"
        assert not (root / epoch_dir_name(2)).exists()

        # A rolled-back journal does not block the next migration...
        follow_up = ReshardCoordinator(shards, "split", 0)
        follow_up.prepare()
        # ...but an in-flight one does.
        with pytest.raises(ReshardError):
            ReshardCoordinator(shards, "split", 0).prepare()
        follow_up.abort("cleanup")
        shards.drain()

    def test_rejects_bad_requests(self, serve_rib, fast_config, tmp_path):
        durable = build_set(serve_rib, fast_config, tmp_path)
        with pytest.raises(ReshardError):
            ReshardCoordinator(durable, "rotate", 0)
        with pytest.raises(ReshardError):
            ReshardCoordinator(durable, "split", 9)
        durable.drain()

        ephemeral = ShardSet.build(
            serve_rib, shard_count=2, config=fast_config
        )
        with pytest.raises(ReshardError):
            ReshardCoordinator(ephemeral, "split", 0)


class TestResolveReshard:
    def _state(self, stage, epoch_to=2):
        return MigrationState(
            stage=stage,
            action="split",
            shard=0,
            epoch_from=epoch_to - 1,
            epoch_to=epoch_to,
            epoch_dir=epoch_dir_name(epoch_to),
            old_boundaries=[0],
            new_boundaries=[0, 1 << 31],
        )

    def test_no_journal_resolves_to_the_root(self, tmp_path):
        assert resolve_reshard(tmp_path) == tmp_path

    @pytest.mark.parametrize("stage", ["prepare", "copy", "catchup"])
    def test_pre_commit_stages_roll_back(self, tmp_path, stage):
        epoch = tmp_path / epoch_dir_name(2)
        epoch.mkdir()
        (epoch / "junk").write_text("partial")
        write_state(tmp_path, self._state(stage))
        assert resolve_reshard(tmp_path) == tmp_path
        assert not epoch.exists()
        after = read_state(tmp_path)
        assert after.stage == "rolled-back"
        assert after.reason == "crash before cutover commit"

    @pytest.mark.parametrize("stage", ["cutover", "retire", "done"])
    def test_post_commit_stages_roll_forward(self, tmp_path, stage):
        epoch = tmp_path / epoch_dir_name(2)
        epoch.mkdir()
        (epoch / "serve.json").write_text("{}")
        write_state(tmp_path, self._state(stage))
        assert resolve_reshard(tmp_path) == epoch
        assert read_state(tmp_path).stage == "done"

    def test_roll_forward_without_topology_is_an_error(self, tmp_path):
        write_state(tmp_path, self._state("cutover"))
        with pytest.raises(ReshardError):
            resolve_reshard(tmp_path)

    def test_chained_journals_resolve_to_the_deepest_epoch(self, tmp_path):
        second = tmp_path / epoch_dir_name(2)
        third = second / epoch_dir_name(3)
        third.mkdir(parents=True)
        (second / "serve.json").write_text("{}")
        (third / "serve.json").write_text("{}")
        write_state(tmp_path, self._state("done", epoch_to=2))
        write_state(second, self._state("cutover", epoch_to=3))
        assert resolve_reshard(tmp_path) == third

    def test_malformed_journals_are_loud(self, tmp_path):
        (tmp_path / RESHARD_FILE).write_text("not json")
        with pytest.raises(ReshardError):
            resolve_reshard(tmp_path)
        (tmp_path / RESHARD_FILE).write_text(json.dumps({"version": 99}))
        with pytest.raises(ReshardError):
            resolve_reshard(tmp_path)
        state = self._state("defragmenting")
        data = state.as_dict()
        (tmp_path / RESHARD_FILE).write_text(json.dumps(data))
        with pytest.raises(ReshardError):
            resolve_reshard(tmp_path)


class TestServerRPC:
    def test_split_over_the_wire_then_lookups_on_the_new_epoch(
        self, serve_rib, fast_config, tmp_path
    ):
        import time

        from repro.serve.client import ServeClient
        from repro.serve.server import ServeConfig, ServerThread

        shards = build_set(serve_rib, fast_config, tmp_path)
        reference = BinaryTrie.from_routes(serve_rib)
        with ServerThread(shards, ServeConfig()) as thread:
            client = ServeClient("127.0.0.1", thread.server.port, timeout=30.0)
            try:
                started = client.reshard({"action": "split", "shard": 0})
                assert started["started"] and started["epoch_to"] == 2
                deadline = time.monotonic() + 30.0
                status = {}
                while time.monotonic() < deadline:
                    status = client.reshard({"action": "status"})
                    if not status["in_progress"]:
                        break
                    time.sleep(0.02)
                assert status["reshard"]["stage"] == "done"
                assert client.health()["epoch"] == 2
                assert client.health()["shards"] == 3

                routes = list(reference.routes())
                addresses = TrafficGenerator(routes, seed=33).take(256)
                expected = [reference.lookup(a) for a in addresses]
                assert client.lookup(addresses) == expected

                ranges = [row["range"] for row in client.stats()["shards"]]
                assert len(ranges) == 3
                assert ranges[0][0] == 0 and ranges[-1][1] == 1 << 32
            finally:
                client.close()

    def test_reshard_refused_without_journals(self, serve_rib, fast_config):
        from repro.serve.client import ServeClient, ServeClientError
        from repro.serve.server import ServeConfig, ServerThread

        shards = ShardSet.build(serve_rib, shard_count=2, config=fast_config)
        with ServerThread(shards, ServeConfig()) as thread:
            client = ServeClient("127.0.0.1", thread.server.port, timeout=30.0)
            try:
                with pytest.raises(ServeClientError):
                    client.reshard({"action": "split", "shard": 0})
                with pytest.raises(ServeClientError):
                    client.reshard({"action": "sideways"})
            finally:
                client.close()
