"""End-to-end serving plane: ServerThread + ServeClient over loopback."""

import pytest

from repro.net.prefix import Prefix
from repro.serve import (
    ServeClient,
    ServeClientError,
    ServeConfig,
    ServerThread,
    ShardSet,
    protocol,
)
from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateKind, UpdateMessage


@pytest.fixture(scope="module")
def served(serve_rib):
    """One long-lived 2-shard server the read-only tests share."""
    from repro.core.config import SystemConfig
    from repro.engine.simulator import EngineConfig

    shards = ShardSet.build(
        serve_rib,
        shard_count=2,
        config=SystemConfig(engine=EngineConfig(lookup_backend="fast")),
    )
    with ServerThread(shards, ServeConfig(inflight_window=8)) as thread:
        yield thread


@pytest.fixture()
def client(served):
    with ServeClient("127.0.0.1", served.server.port) as conn:
        yield conn


class TestEndToEnd:
    def test_lookup_matches_reference_trie(self, served, client, serve_rib):
        reference = BinaryTrie.from_routes(serve_rib)
        addresses = TrafficGenerator(serve_rib, seed=17).take(1_024)
        expected = [reference.lookup(address) for address in addresses]
        assert client.lookup(addresses) == expected
        assert client.lookup([]) == []

    def test_update_ack_and_visibility(self, served, client):
        prefix = Prefix.parse("198.51.100.0/24")
        ack = client.update(
            [UpdateMessage(UpdateKind.ANNOUNCE, prefix, 63, 0.0)]
        )
        assert ack.accepted == 1 and ack.shed == 0 and not ack.durable
        assert client.lookup([prefix.network + 1]) == [63]

    def test_health_and_stats_shapes(self, served, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["shards"] == 2
        assert health["durable"] is False
        assert health["port"] == served.server.port

        stats = client.stats()
        assert stats["draining"] is False
        assert stats["serve"]["connections_active"] >= 1
        assert len(stats["shards"]) == 2
        for index, shard in enumerate(stats["shards"]):
            assert shard["shard"] == index
            assert shard["engine_stats"]["completions"] > 0

    def test_fingerprint_matches_inprocess(self, served, client):
        assert client.fingerprint() == served.server.shards.fingerprint()

    def test_checkpoint_without_journal_is_an_error(self, served, client):
        with pytest.raises(ServeClientError):
            client.checkpoint()

    def test_errors_do_not_poison_the_connection(self, served, client):
        request = client.send(0x7F)  # unknown type
        frame = client.recv()
        assert frame.type == protocol.MSG_ERROR
        assert frame.request_id == request

        client.send(protocol.MSG_LOOKUP, b"abc")  # misaligned payload
        assert client.recv().type == protocol.MSG_ERROR

        assert client.health()["status"] == "ok"


class TestBackpressure:
    def test_window_overflow_answers_busy_in_order(self, serve_rib, fast_config):
        shards = ShardSet.build(serve_rib, shard_count=1, config=fast_config)
        with ServerThread(shards, ServeConfig(inflight_window=1)) as thread:
            with ServeClient("127.0.0.1", thread.server.port) as conn:
                # A heavy first request keeps the dispatcher busy while
                # the tiny follow-ups pile into the one-slot window.
                big = TrafficGenerator(serve_rib, seed=19).take(8_192)
                ids = [conn.send(
                    protocol.MSG_LOOKUP, protocol.encode_addresses(big)
                )]
                tiny = protocol.encode_addresses([big[0]])
                for _ in range(8):
                    ids.append(conn.send(protocol.MSG_LOOKUP, tiny))
                frames = [conn.recv() for _ in ids]

        assert [frame.request_id for frame in frames] == ids
        kinds = {frame.type for frame in frames}
        assert kinds <= {protocol.MSG_LOOKUP_OK, protocol.MSG_BUSY}
        assert frames[0].type == protocol.MSG_LOOKUP_OK
        busy = [f for f in frames if f.type == protocol.MSG_BUSY]
        assert busy, "window never tripped"
        assert {protocol.decode_text(f.payload) for f in busy} == {"window"}


class TestGracefulDrain:
    def test_drain_loses_no_admitted_request(self, serve_rib, fast_config):
        """Every pipelined request is answered — OK or explicit BUSY."""
        shards = ShardSet.build(serve_rib, shard_count=2, config=fast_config)
        thread = ServerThread(shards, ServeConfig(inflight_window=64))
        port = thread.start()

        batch = protocol.encode_addresses(
            TrafficGenerator(serve_rib, seed=23).take(64)
        )
        with ServeClient("127.0.0.1", port) as conn:
            ids = [conn.send(protocol.MSG_LOOKUP, batch) for _ in range(20)]

            with ServeClient("127.0.0.1", port) as admin:
                assert admin.drain() == {"draining": True}
                admin.half_close()

            ids += [conn.send(protocol.MSG_LOOKUP, batch) for _ in range(5)]
            conn.half_close()

            frames = []
            while True:
                try:
                    frames.append(conn.recv())
                except protocol.ProtocolError:
                    break

        assert thread.stop() == 0
        assert [frame.request_id for frame in frames] == ids
        for frame in frames:
            assert frame.type in (protocol.MSG_LOOKUP_OK, protocol.MSG_BUSY)
        reasons = {
            protocol.decode_text(f.payload)
            for f in frames
            if f.type == protocol.MSG_BUSY
        }
        assert reasons <= {"draining"}

        health = thread.server._health_snapshot()
        assert health["status"] == "draining"
