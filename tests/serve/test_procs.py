"""Multi-process serving plane: supervisor, worker fleet, parent front.

Three spawned topologies total (each costs two subprocess builds), so
the shared read-mostly assertions ride one module-scoped front while the
drain/restore and crash drills get their own.  Everything else — spec
argv synthesis, restart budgets, config validation — is pure in-process.
"""

import json
import os
import signal
import time

import pytest

from repro.core.config import SystemConfig
from repro.engine.simulator import EngineConfig
from repro.net.prefix import Prefix
from repro.serve import (
    ProcessFront,
    ProcessSupervisor,
    ServeClient,
    ServeConfig,
    ServerThread,
    ShardSet,
    WorkerSpec,
    plan_shards,
)
from repro.serve.client import ServerBusyError
from repro.serve.procs import WorkerError
from repro.serve.router import ShardRouter
from repro.trie.trie import BinaryTrie
from repro.workload.traces import save_table
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateKind, UpdateMessage


def _worker_config() -> SystemConfig:
    """The engine config a default :class:`WorkerSpec` spawns with."""
    spec = WorkerSpec(shard_count=1)
    return SystemConfig(
        engine=EngineConfig(
            chip_count=spec.chips,
            dred_capacity=spec.dred,
            queue_capacity=spec.queue,
            lookup_backend=spec.backend,
        ),
        update_queue_capacity=spec.update_queue,
    )


def _spawn_front(table, state_dir, routes):
    """A started 2-worker durable front; caller owns shutdown."""
    plan = plan_shards(routes, 2, mode=_worker_config().compression_mode)
    spec = WorkerSpec(
        shard_count=2, table=str(table), journal=str(state_dir)
    )
    supervisor = ProcessSupervisor(spec, plan.router.boundaries)
    front = ProcessFront(supervisor, ServeConfig(inflight_window=8))
    return front, supervisor


@pytest.fixture(scope="module")
def proc_table(tmp_path_factory, serve_rib):
    path = tmp_path_factory.mktemp("procs") / "table.txt"
    save_table(serve_rib, path)
    return path


@pytest.fixture(scope="module")
def proc_front(tmp_path_factory, proc_table, serve_rib):
    state = tmp_path_factory.mktemp("procs-state") / "state"
    front, supervisor = _spawn_front(proc_table, state, serve_rib)
    with ServerThread(server=front) as thread:
        yield thread, supervisor


@pytest.fixture()
def proc_client(proc_front):
    thread, _ = proc_front
    with ServeClient("127.0.0.1", thread.server.port) as conn:
        yield conn


class TestProcessFront:
    """Order matters: the fingerprint pin runs before any update."""

    def test_fingerprint_matches_inprocess_build(
        self, proc_client, serve_rib
    ):
        local = ShardSet.build(
            serve_rib, shard_count=2, config=_worker_config()
        )
        assert proc_client.fingerprint() == local.fingerprint()

    def test_lookup_matches_reference_trie(self, proc_client, serve_rib):
        reference = BinaryTrie.from_routes(serve_rib)
        addresses = TrafficGenerator(serve_rib, seed=17).take(1_024)
        expected = [reference.lookup(address) for address in addresses]
        assert proc_client.lookup(addresses) == expected
        assert proc_client.lookup([]) == []

    def test_update_ack_durable_and_visible(self, proc_client):
        prefix = Prefix.parse("198.51.100.0/24")
        ack = proc_client.update(
            [UpdateMessage(UpdateKind.ANNOUNCE, prefix, 63, 0.0)]
        )
        assert ack.accepted == 1 and ack.shed == 0
        assert ack.durable, "worker journals before acking"
        assert proc_client.lookup([prefix.network + 1]) == [63]

    def test_health_reports_process_topology(self, proc_front, proc_client):
        thread, supervisor = proc_front
        health = proc_client.health()
        assert health["mode"] == "processes"
        assert health["shards"] == 2
        assert health["durable"] is True
        assert health["boundaries"] == supervisor.boundaries
        rows = health["workers"]
        assert [row["shard"] for row in rows] == [0, 1]
        assert all(row["alive"] for row in rows)
        assert [(row["host"], row["port"]) for row in rows] == (
            supervisor.endpoints()
        )

    def test_stats_aggregates_worker_rows(self, proc_client):
        stats = proc_client.stats()
        assert stats["draining"] is False
        rows = stats["shards"]
        assert [row["shard"] for row in rows] == [0, 1]
        for row in rows:
            assert row["range"][0] < row["range"][1]
        merged = stats["workers_serve"]
        assert merged["lookup_requests"] > 0
        # The parent's own counters are the client-facing layer; the
        # worker aggregate counts the fanned-out sub-requests.
        assert stats["serve"]["lookups_total"] > 0

    def test_flush_and_checkpoint_fan_out(self, proc_client):
        assert "flushed" in proc_client.flush()
        checkpoints = proc_client.checkpoint()["checkpoints"]
        assert len(checkpoints) == 2

    def test_reshard_rejected_with_worker_processes(self, proc_client):
        from repro.serve.client import ServeClientError

        with pytest.raises(ServeClientError, match="not supported"):
            proc_client.reshard({"action": "split", "shard": 0})


class TestDrainRestore:
    def test_drain_checkpoints_every_worker_journal(
        self, tmp_path, proc_table, serve_rib
    ):
        state = tmp_path / "state"
        front, _ = _spawn_front(proc_table, state, serve_rib)
        prefix = Prefix.parse("203.0.113.0/24")
        with ServerThread(server=front) as thread:
            with ServeClient("127.0.0.1", thread.server.port) as client:
                ack = client.update(
                    [UpdateMessage(UpdateKind.ANNOUNCE, prefix, 41, 0.0)]
                )
                assert ack.durable
                live_fingerprint = client.fingerprint()
        # ServerThread.stop() drained: every worker flushed, wrote a
        # final checkpoint, and exited 0 before the parent returned.
        meta = json.loads((state / "serve.json").read_text())
        assert meta["workers"]["mode"] == "processes"
        restored, reports = ShardSet.restore(state)
        assert restored.fingerprint() == live_fingerprint
        assert len(reports) == 2
        assert restored.lookup([prefix.network + 1]) == [41]


class TestWorkerCrash:
    def test_killed_worker_sheds_busy_then_restores(
        self, tmp_path, proc_table, serve_rib
    ):
        state = tmp_path / "state"
        front, supervisor = _spawn_front(proc_table, state, serve_rib)
        router = ShardRouter(supervisor.boundaries)
        hot = supervisor.boundaries[1] + 4_096
        cold = supervisor.boundaries[1] - 4_096
        assert router.shard_of(hot) == 1 and router.shard_of(cold) == 0
        prefix = Prefix(hot >> 8, 24)
        assert router.shards_covering(prefix) == range(1, 2)
        with ServerThread(server=front) as thread:
            with ServeClient("127.0.0.1", thread.server.port) as client:
                ack = client.update(
                    [UpdateMessage(UpdateKind.ANNOUNCE, prefix, 77, 0.0)]
                )
                assert ack.durable
                os.kill(supervisor.workers[1].proc.pid, signal.SIGKILL)
                # The dead shard's range sheds BUSY immediately — the
                # parent never hangs on the corpse — while the sibling
                # keeps serving.
                saw_busy = False
                try:
                    client.lookup([hot])
                except ServerBusyError as exc:
                    saw_busy = True
                    assert "worker" in str(exc)
                assert client.lookup([cold]) is not None
                deadline = time.monotonic() + 90.0
                hops = None
                while time.monotonic() < deadline:
                    try:
                        hops = client.lookup([hot])
                        break
                    except ServerBusyError as exc:
                        saw_busy = True
                        assert "worker" in str(exc)
                        time.sleep(0.2)
                assert saw_busy, "a SIGKILLed worker must shed, not serve"
                assert hops == [77], "restart must replay the journal"
                stats = client.stats()
                assert stats["serve"]["worker_crashes"] >= 1
                assert stats["serve"]["worker_restarts"] >= 1
                health = client.health()
                assert all(row["alive"] for row in health["workers"])


class TestSpecAndSupervisorUnits:
    def test_cli_args_build_mode(self, tmp_path):
        spec = WorkerSpec(
            shard_count=2, table="t.txt", journal=str(tmp_path)
        )
        args = spec.cli_args(1)
        assert args[:5] == ["serve", "--shards", "2", "--shard-index", "1"]
        assert "--table" in args and "--restore" not in args
        assert "--journal" in args and "--sync-every" in args

    def test_cli_args_restore_mode_for_respawn(self, tmp_path):
        spec = WorkerSpec(
            shard_count=2, table="t.txt", journal=str(tmp_path)
        )
        args = spec.cli_args(0, restore=True)
        assert "--restore" in args and "--table" not in args

    def test_cli_args_reject_impossible_modes(self):
        with pytest.raises(WorkerError):
            WorkerSpec(shard_count=1).cli_args(0)  # no table, no journal
        with pytest.raises(WorkerError):
            WorkerSpec(shard_count=1, table="t").cli_args(0, restore=True)

    def test_supervisor_rejects_boundary_mismatch(self):
        with pytest.raises(WorkerError, match="boundaries"):
            ProcessSupervisor(WorkerSpec(shard_count=2, table="t"), [0])

    def test_memory_only_workers_never_restart(self):
        supervisor = ProcessSupervisor(
            WorkerSpec(shard_count=1, table="t"), [0], restart_limit=3
        )
        # A journal-less respawn would silently forget acked updates.
        assert supervisor.restart_limit == 0
        assert not supervisor.can_restart(0)

    def test_front_rejects_replication_config(self):
        supervisor = ProcessSupervisor(
            WorkerSpec(shard_count=1, table="t"), [0]
        )
        with pytest.raises(ValueError, match="replication"):
            ProcessFront(
                supervisor, ServeConfig(replicate_to="127.0.0.1:1")
            )
