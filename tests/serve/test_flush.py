"""MSG_FLUSH: the campaign runner's quiesce point, over the wire.

Flush differs from drain — it applies every queued update and syncs the
journal but leaves the server serving; drain checkpoints and closes.
The campaign needs exactly that: a moment where the system is fully
caught up and durable, *before* traffic, without ending the cell.
"""

import pytest

from repro.core.config import SystemConfig
from repro.engine.simulator import EngineConfig
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServerThread
from repro.serve.shard import ShardSet
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.updategen import UpdateGenerator

CONFIG = SystemConfig(
    engine=EngineConfig(chip_count=2, dred_capacity=64, queue_capacity=64),
    update_queue_capacity=256,
)


@pytest.fixture
def routes():
    return generate_rib(5, RibParameters(size=150))


def _serve(routes, tmp_path=None, shard_count=2):
    shards = ShardSet.build(
        routes,
        shard_count=shard_count,
        config=CONFIG,
        journal_dir=tmp_path,
    )
    return shards, ServerThread(shards, ServeConfig())


def test_flush_applies_queued_updates(routes, tmp_path):
    shards, thread = _serve(routes, tmp_path / "state")
    with thread:
        with ServeClient("127.0.0.1", thread.server.port) as client:
            batch = UpdateGenerator(routes, seed=9).take(40)
            ack = client.update(batch)
            assert ack.accepted == 40
            result = client.flush()
            fingerprint = client.fingerprint()
    # Everything the flush applied must already be on disk: a clean
    # restore of the journal reproduces the exact served state.
    restored, _reports = ShardSet.restore(tmp_path / "state", config=CONFIG)
    try:
        assert restored.fingerprint() == fingerprint
    finally:
        for worker in restored.workers:
            if worker.manager is not None:
                worker.manager.close()
    assert result["flushed"] >= 0


def test_flush_without_journal_still_applies(routes):
    shards, thread = _serve(routes, tmp_path=None, shard_count=1)
    with thread:
        with ServeClient("127.0.0.1", thread.server.port) as client:
            batch = UpdateGenerator(routes, seed=9).take(24)
            client.update(batch)
            client.flush()
            # The queue is empty: flushing again applies nothing.
            assert client.flush()["flushed"] == 0


def test_flush_keeps_serving(routes):
    shards, thread = _serve(routes, tmp_path=None, shard_count=1)
    with thread:
        with ServeClient("127.0.0.1", thread.server.port) as client:
            client.flush()
            hops = client.lookup([routes[0][0].network])
            assert len(hops) == 1


def test_shardset_flush_sums_workers(routes):
    shards = ShardSet.build(routes, shard_count=2, config=CONFIG)
    stream = UpdateGenerator(routes, seed=11).take(30)
    for message in stream:
        shards.update([message])
    assert shards.flush() >= 0
    for worker in shards.workers:
        assert worker.system.scheduler.queue.is_empty
