"""Property/fuzz tests for the wire-protocol frame codec.

Hypothesis drives three hostile-stream properties the hand-written
protocol tests cannot cover exhaustively:

* any (type, request_id, payload) round-trips byte-identically through
  ``encode_frame`` → ``read_frame_blocking``, alone and concatenated;
* truncating an encoded frame at *any* byte boundary raises
  :class:`ProtocolError` (peer died mid-send) — never a hang, never a
  mangled frame;
* a frame whose header advertises a payload beyond ``MAX_FRAME_BYTES``
  is rejected from the header alone, before any payload is read.
"""

import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    read_frame_blocking,
)

payloads = st.binary(max_size=2048)
msg_types = st.integers(min_value=0, max_value=255)
request_ids = st.integers(min_value=0, max_value=2**32 - 1)


def _roundtrip(wire: bytes):
    """Feed raw bytes through a real socket pair, read frames back."""
    left, right = socket.socketpair()
    frames = []
    error = []

    def reader():
        try:
            while True:
                frame = read_frame_blocking(right)
                if frame is None:
                    return
                frames.append(frame)
        except ProtocolError as exc:
            error.append(exc)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        left.sendall(wire)
    finally:
        left.close()
    thread.join(timeout=10)
    assert not thread.is_alive(), "reader hung on hostile input"
    right.close()
    return frames, error


@given(msg_type=msg_types, request_id=request_ids, payload=payloads)
@settings(max_examples=150, deadline=None)
def test_frame_roundtrip(msg_type, request_id, payload):
    frames, error = _roundtrip(encode_frame(msg_type, request_id, payload))
    assert not error
    assert len(frames) == 1
    frame = frames[0]
    assert frame.type == msg_type
    assert frame.request_id == request_id
    assert frame.payload == payload


@given(
    parts=st.lists(
        st.tuples(msg_types, request_ids, st.binary(max_size=256)),
        min_size=2,
        max_size=6,
    )
)
@settings(max_examples=50, deadline=None)
def test_concatenated_frames_stay_delimited(parts):
    wire = b"".join(encode_frame(*part) for part in parts)
    frames, error = _roundtrip(wire)
    assert not error
    assert [(f.type, f.request_id, f.payload) for f in frames] == parts


@given(
    msg_type=msg_types,
    request_id=request_ids,
    payload=st.binary(min_size=0, max_size=512),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_truncated_frame_raises(msg_type, request_id, payload, data):
    wire = encode_frame(msg_type, request_id, payload)
    cut = data.draw(st.integers(min_value=1, max_value=len(wire) - 1))
    frames, error = _roundtrip(wire[:cut])
    assert not frames
    assert len(error) == 1
    assert "closed mid-" in str(error[0])


@given(
    excess=st.integers(min_value=1, max_value=2**31 - MAX_FRAME_BYTES - 6),
    msg_type=msg_types,
    request_id=request_ids,
)
@settings(max_examples=80, deadline=None)
def test_oversize_header_rejected_without_reading_payload(
    excess, msg_type, request_id
):
    length = MAX_FRAME_BYTES + 5 + excess
    header = struct.pack("!IBI", length, msg_type, request_id)
    # Only the header goes over the wire: rejection must not wait for
    # (gigabytes of) payload that will never arrive.
    frames, error = _roundtrip(header)
    assert not frames
    assert len(error) == 1
    assert "exceeds" in str(error[0])


@given(length=st.integers(min_value=0, max_value=4))
@settings(max_examples=10, deadline=None)
def test_undersize_length_rejected(length):
    header = struct.pack("!IBI", length, 0x01, 7)
    frames, error = _roundtrip(header)
    assert not frames
    assert len(error) == 1
    assert "below the 5-byte header" in str(error[0])


def test_encode_rejects_oversize_payload():
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame(0x01, 1, b"\x00" * (MAX_FRAME_BYTES + 1))


@given(payload=st.binary(max_size=64))
@settings(max_examples=30, deadline=None)
def test_garbage_after_valid_frame_is_contained(payload):
    wire = encode_frame(protocol.MSG_HEALTH, 1, payload) + b"\xff\xff"
    frames, error = _roundtrip(wire)
    # The valid frame decodes; the trailing garbage is a mid-header EOF.
    assert len(frames) == 1
    assert frames[0].payload == payload
    assert len(error) == 1
