"""Stateful property test interleaving faults, updates and traffic.

Hypothesis drives a live ClueSystem through chip deaths and recoveries,
slot corruption with self-healing audits, rebalances and routing churn,
checking after every step that completed lookups still match the
control-plane LPM and that CLUE's DRed-exclusion invariant holds.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.net.prefix import Prefix
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateKind, UpdateMessage

prefix_strategy = st.integers(4, 24).flatmap(
    lambda length: st.builds(
        Prefix,
        st.integers(0, (1 << length) - 1),
        st.just(length),
    )
)

CHIPS = 3


class FaultMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.routes = generate_rib(77, RibParameters(size=300))
        self.system = ClueSystem(
            self.routes,
            SystemConfig(
                engine=EngineConfig(
                    chip_count=CHIPS, queue_capacity=16, dred_capacity=64
                ),
                partitions_per_chip=2,
            ),
        )
        self.traffic = TrafficGenerator(self.routes, seed=78)
        self.clock = 0.0
        self.corrupt_seed = 0

    def alive(self):
        return self.system.engine.alive_chips

    # -- routing churn -------------------------------------------------

    @rule(prefix=prefix_strategy, hop=st.integers(0, 7))
    def announce(self, prefix, hop):
        self.clock += 0.001
        self.system.apply_update(
            UpdateMessage(UpdateKind.ANNOUNCE, prefix, hop, self.clock)
        )

    @rule(prefix=prefix_strategy)
    def withdraw(self, prefix):
        self.clock += 0.001
        self.system.apply_update(
            UpdateMessage(UpdateKind.WITHDRAW, prefix, None, self.clock)
        )

    # -- data plane ----------------------------------------------------

    @rule()
    def traffic_burst(self):
        self.system.process_traffic(self.traffic, 150)
        assert self.system.engine.verify_completions()
        self.system.engine.reorder.released.clear()

    @rule()
    def rebalance(self):
        report = self.system.rebalance()
        assert report.is_even
        assert report.survivor_chips == self.alive()

    # -- faults --------------------------------------------------------

    @precondition(lambda self: len(self.alive()) >= 2)
    @rule(pick=st.integers(0, CHIPS - 1))
    def fail_chip(self, pick):
        alive = self.alive()
        self.system.fail_chip(alive[pick % len(alive)])

    @precondition(lambda self: len(self.alive()) < CHIPS)
    @rule(pick=st.integers(0, CHIPS - 1))
    def recover_chip(self, pick):
        dead = [
            index
            for index in range(CHIPS)
            if index not in self.alive()
        ]
        self.system.recover_chip(dead[pick % len(dead)])

    @rule(chip=st.integers(0, CHIPS - 1))
    def corrupt_and_heal(self, chip):
        victim = self.system.engine.chips[chip]
        if len(victim.table) == 0:
            return
        from repro.faults import FaultInjector, FaultSchedule

        self.corrupt_seed += 1
        schedule = FaultSchedule(seed=self.corrupt_seed).corrupt(
            0, chip=chip
        )
        FaultInjector(self.system.engine, schedule).tick(0)
        report = self.system.verify_chips(chips=[chip])
        assert report.repairs >= 1

    # -- invariants ----------------------------------------------------

    @invariant()
    def dred_exclusion_holds(self):
        assert self.system.check_dred_exclusion()

    @invariant()
    def audit_stays_clean(self):
        # No rule leaves silent drift behind: outside an injected-and-
        # healed corruption window the audit finds nothing to fix.
        assert self.system.verify_chips(repair=False).clean


TestFaultMachine = FaultMachine.TestCase
TestFaultMachine.settings = settings(
    max_examples=8, stateful_step_count=15, deadline=None
)
