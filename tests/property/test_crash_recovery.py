"""Property: crash anywhere, restore, replay the rest — state is identical.

Hypothesis picks a seeded update trace, a crash point inside it, a
failure model (process kill vs power loss) and a checkpoint cadence; the
journaled run is killed at the crash point, restored from disk, and fed
the remainder of the trace.  Its state fingerprint must equal that of an
uninterrupted run of the same trace — the paper's deterministic update
pipeline makes redo-log replay exact, whatever the crash point.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.persist import PersistenceManager
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.updategen import UpdateGenerator

ROUTES = generate_rib(21, RibParameters(size=200))
TRACE_LEN = 120
PUMP_EVERY = 3


def make_system():
    # Small queue: storms (deferred TCAM writes) happen inside the trace,
    # so crash points land in every scheduler regime.
    return ClueSystem(
        ROUTES,
        SystemConfig(
            engine=EngineConfig(chip_count=2),
            update_queue_capacity=24,
        ),
    )


def trace_for(seed):
    return UpdateGenerator(list(ROUTES), seed=seed).take(TRACE_LEN)


def run_slice(target, trace, start, stop):
    """The fixed driving cadence, indexed globally so runs line up."""
    for index in range(start, stop):
        target.offer_update(trace[index])
        if index % PUMP_EVERY == 0:
            target.pump_updates(2)


def finish(target):
    target.drain_updates()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 50),
    crash_at=st.integers(0, TRACE_LEN - 1),
    power_loss=st.booleans(),
    checkpoint_every=st.sampled_from([1, 7, 25, 0]),
)
def test_crash_restore_replay_equals_uninterrupted(
    tmp_path_factory, seed, crash_at, power_loss, checkpoint_every
):
    trace = trace_for(seed)

    reference = make_system()
    run_slice(reference, trace, 0, TRACE_LEN)
    finish(reference)

    directory = tmp_path_factory.mktemp("state")
    system = make_system()
    manager = PersistenceManager(
        system, directory, checkpoint_every=checkpoint_every, sync_interval=8
    )
    run_slice(manager, trace, 0, crash_at)
    manager.crash(power_loss=power_loss)

    restored, report = PersistenceManager.restore(directory)
    assert report.audit is not None and report.audit.ok
    # Power loss may destroy the unsynced journal tail: resume exactly
    # where the durable history ends, not where the dead process was.
    resume_at = restored.system.scheduler.stats.offered
    assert resume_at <= crash_at
    if not power_loss:
        assert resume_at == crash_at  # kill -9 loses nothing
    # The tail can be torn *inside* an iteration — the offer survived but
    # its same-iteration pump did not.  The durable pump count says so;
    # re-issue that one pump so the cadence matches the reference.
    pumps_done = restored.system.scheduler.stats.pump_calls
    pumps_expected = len(range(0, resume_at, PUMP_EVERY))
    assert pumps_expected - pumps_done in (0, 1)
    if pumps_done < pumps_expected:
        restored.pump_updates(2)
    run_slice(restored, trace, resume_at, TRACE_LEN)
    finish(restored)

    assert (
        restored.system.state_fingerprint() == reference.state_fingerprint()
    )
    assert restored.system.pipeline.tcam_matches_table()
    restored.close()
