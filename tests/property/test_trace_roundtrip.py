"""Round-trip properties of the trace (de)serialisers.

Hypothesis generates arbitrary tables, update streams and packet traces
— including the edge prefixes 0.0.0.0/0 and /32 host routes — and
proves ``load(save(x)) == x`` for both plain and gzip-compressed files.
Timestamps are drawn on a microsecond grid because the update format
serialises with six decimals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.prefix import ADDRESS_WIDTH, Prefix
from repro.workload.traces import (
    load_packets,
    load_table,
    load_updates,
    save_packets,
    save_table,
    save_updates,
)
from repro.workload.updategen import UpdateKind, UpdateMessage

prefixes = st.integers(0, ADDRESS_WIDTH).flatmap(
    lambda length: st.builds(
        Prefix,
        st.integers(0, (1 << length) - 1) if length else st.just(0),
        st.just(length),
    )
)

# Always include the two edge prefixes so every run exercises them.
edgy_prefixes = st.one_of(
    st.sampled_from(
        [Prefix(0, 0), Prefix((10 << 24) | 99, 32), Prefix((1 << 32) - 1, 32)]
    ),
    prefixes,
)

hops = st.integers(0, 255)
addresses = st.integers(0, (1 << ADDRESS_WIDTH) - 1)
# Microsecond grid: exact under the %.6f serialisation.
timestamps = st.integers(0, 10**12).map(lambda us: us / 1e6)

updates = st.one_of(
    st.builds(
        UpdateMessage,
        st.just(UpdateKind.ANNOUNCE),
        edgy_prefixes,
        hops,
        timestamps,
    ),
    st.builds(
        UpdateMessage,
        st.just(UpdateKind.WITHDRAW),
        edgy_prefixes,
        st.none(),
        timestamps,
    ),
)

suffixes = st.sampled_from(["txt", "txt.gz"])


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(edgy_prefixes, hops), max_size=40), suffixes)
def test_table_roundtrip(tmp_path_factory, routes, suffix):
    path = tmp_path_factory.mktemp("rt") / f"table.{suffix}"
    save_table(routes, path)
    assert load_table(path) == routes


@settings(max_examples=40, deadline=None)
@given(st.lists(updates, max_size=40), suffixes)
def test_updates_roundtrip(tmp_path_factory, messages, suffix):
    path = tmp_path_factory.mktemp("rt") / f"updates.{suffix}"
    save_updates(messages, path)
    assert load_updates(path) == messages


@settings(max_examples=40, deadline=None)
@given(st.lists(addresses, max_size=60), suffixes)
def test_packets_roundtrip(tmp_path_factory, trace, suffix):
    path = tmp_path_factory.mktemp("rt") / f"packets.{suffix}"
    save_packets(trace, path)
    assert load_packets(path) == trace
