"""Stateful property tests: long random op sequences against oracles.

Hypothesis drives announce/withdraw/lookup sequences and shrinks any
failure to a minimal reproduction.  Each machine pairs a production
structure with an independent oracle:

* incremental ONRTC  ↔ one-shot optimal compressor on a shadow trie;
* lazy ONRTC         ↔ forwarding-equivalence + disjointness invariants;
* PLO TCAM updater   ↔ plain dict + reference LPM;
* DRed cache         ↔ a 20-line LRU model.
"""

from collections import OrderedDict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.compress.labels import CompressionMode
from repro.compress.lazy import LazyOnrtcTable
from repro.compress.onrtc import OnrtcTable, compress
from repro.compress.verify import find_mismatch, is_disjoint_table
from repro.engine.dred import DredCache
from repro.net.prefix import ADDRESS_WIDTH, Prefix
from repro.tcam.device import Tcam
from repro.tcam.update_plo import PloUpdater
from repro.trie.trie import BinaryTrie

# Small universe so collisions (the interesting cases) are frequent.
prefix_strategy = st.integers(0, 6).flatmap(
    lambda length: st.builds(
        Prefix,
        st.integers(0, (1 << length) - 1 if length else 0),
        st.just(length),
    )
)
hop_strategy = st.integers(1, 3)
address_strategy = st.integers(0, (1 << 32) - 1)

COMMON_SETTINGS = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)


class OnrtcMachine(RuleBasedStateMachine):
    """Incremental ONRTC must equal the one-shot optimum at every step."""

    def __init__(self):
        super().__init__()
        self.shadow = BinaryTrie()
        self.tables = {
            mode: OnrtcTable([], mode=mode) for mode in CompressionMode
        }

    @rule(prefix=prefix_strategy, hop=hop_strategy)
    def announce(self, prefix, hop):
        self.shadow.insert(prefix, hop)
        for table in self.tables.values():
            table.announce(prefix, hop)

    @rule(prefix=prefix_strategy)
    def withdraw(self, prefix):
        self.shadow.delete(prefix)
        for table in self.tables.values():
            table.withdraw(prefix)

    @invariant()
    def matches_one_shot(self):
        for mode, table in self.tables.items():
            assert table.table == compress(self.shadow, mode)


class LazyOnrtcMachine(RuleBasedStateMachine):
    """Lazy ONRTC must stay disjoint and forwarding-equivalent."""

    def __init__(self):
        super().__init__()
        self.shadow = BinaryTrie()
        self.lazy = LazyOnrtcTable([], mode=CompressionMode.DONT_CARE)

    @rule(prefix=prefix_strategy, hop=hop_strategy)
    def announce(self, prefix, hop):
        self.shadow.insert(prefix, hop)
        self.lazy.announce(prefix, hop)

    @rule(prefix=prefix_strategy)
    def withdraw(self, prefix):
        self.shadow.delete(prefix)
        self.lazy.withdraw(prefix)

    @rule()
    def recompress(self):
        self.lazy.recompress()

    @invariant()
    def equivalent_and_disjoint(self):
        assert is_disjoint_table(self.lazy.table)
        assert (
            find_mismatch(self.shadow, self.lazy.table, covered_only=True)
            is None
        )


class PloTcamMachine(RuleBasedStateMachine):
    """The PLO updater must track a dict model and keep its layout legal."""

    def __init__(self):
        super().__init__()
        self.chip = Tcam(256, priority_encoder=True)
        self.updater = PloUpdater(self.chip.region(0, 256))
        self.model = {}

    @rule(prefix=prefix_strategy, hop=hop_strategy)
    def upsert(self, prefix, hop):
        if prefix in self.model:
            self.updater.modify(prefix, hop)
        else:
            self.updater.insert(prefix, hop)
        self.model[prefix] = hop

    @rule(prefix=prefix_strategy)
    def delete(self, prefix):
        result = self.updater.delete(prefix)
        assert result.found == (prefix in self.model)
        self.model.pop(prefix, None)

    @rule(address=address_strategy)
    def search(self, address):
        reference = BinaryTrie.from_routes(self.model.items())
        hit = self.updater.region.search(address)
        assert (hit.next_hop if hit else None) == reference.lookup(address)

    @invariant()
    def layout_is_length_ordered_and_packed(self):
        entries = self.updater.entries()
        lengths = [entry.prefix.length for entry in entries]
        assert lengths == sorted(lengths, reverse=True)
        occupancy = self.updater.region.occupancy()
        assert occupancy == len(self.model)
        assert all(
            self.updater.region.read(offset) is not None
            for offset in range(occupancy)
        )


class _LruModel:
    """Oracle: a plain LRU mapping with LPM lookup by linear scan."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = OrderedDict()

    def insert(self, prefix, hop):
        if prefix in self.entries:
            self.entries[prefix] = hop
            self.entries.move_to_end(prefix)
            return
        while len(self.entries) >= self.capacity:
            self.entries.popitem(last=False)
        self.entries[prefix] = hop

    def lookup(self, address):
        best = None
        for prefix, hop in self.entries.items():
            if prefix.contains_address(address):
                if best is None or prefix.length > best[0].length:
                    best = (prefix, hop)
        if best is None:
            return None
        self.entries.move_to_end(best[0])
        return best[1]

    def delete(self, prefix):
        return self.entries.pop(prefix, None) is not None


class DredMachine(RuleBasedStateMachine):
    """The DRed cache must behave exactly like the simple LRU oracle."""

    def __init__(self):
        super().__init__()
        self.cache = DredCache(capacity=4, chip_index=0, exclude_own=False)
        self.model = _LruModel(capacity=4)

    @rule(prefix=prefix_strategy, hop=hop_strategy)
    def insert(self, prefix, hop):
        self.cache.insert(prefix, hop, owner=1)
        self.model.insert(prefix, hop)

    @rule(address=address_strategy)
    def lookup(self, address):
        entry = self.cache.lookup(address)
        expected = self.model.lookup(address)
        assert (entry.next_hop if entry else None) == expected

    @rule(prefix=prefix_strategy)
    def delete(self, prefix):
        assert self.cache.delete(prefix) == self.model.delete(prefix)

    @invariant()
    def same_content(self):
        assert set(self.cache._entries) == set(self.model.entries)
        assert len(self.cache) <= 4


TestOnrtcMachine = OnrtcMachine.TestCase
TestOnrtcMachine.settings = COMMON_SETTINGS
TestLazyOnrtcMachine = LazyOnrtcMachine.TestCase
TestLazyOnrtcMachine.settings = COMMON_SETTINGS
TestPloTcamMachine = PloTcamMachine.TestCase
TestPloTcamMachine.settings = COMMON_SETTINGS
TestDredMachine = DredMachine.TestCase
TestDredMachine.settings = COMMON_SETTINGS
