"""Stateful property test over the whole integrated ClueSystem.

Hypothesis interleaves routing updates and traffic bursts against a live
system and checks the global consistency invariants after every step: the
three table copies (control trie → compressed table → TCAM mirror → chip
tables) never diverge, and the data path answers every completed lookup
exactly like the control plane.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.net.prefix import Prefix
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateKind, UpdateMessage

prefix_strategy = st.integers(4, 24).flatmap(
    lambda length: st.builds(
        Prefix,
        st.integers(0, (1 << length) - 1),
        st.just(length),
    )
)


class ClueSystemMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.routes = generate_rib(55, RibParameters(size=300))
        self.system = ClueSystem(
            self.routes,
            SystemConfig(
                engine=EngineConfig(
                    chip_count=2, queue_capacity=16, dred_capacity=64
                ),
                partitions_per_chip=2,
            ),
        )
        self.traffic = TrafficGenerator(self.routes, seed=56)
        self.clock = 0.0

    @rule(prefix=prefix_strategy, hop=st.integers(0, 7))
    def announce(self, prefix, hop):
        self.clock += 0.001
        self.system.apply_update(
            UpdateMessage(UpdateKind.ANNOUNCE, prefix, hop, self.clock)
        )

    @rule(prefix=prefix_strategy)
    def withdraw(self, prefix):
        self.clock += 0.001
        self.system.apply_update(
            UpdateMessage(UpdateKind.WITHDRAW, prefix, None, self.clock)
        )

    @rule()
    def traffic_burst(self):
        self.system.process_traffic(self.traffic, 150)
        assert self.system.engine.verify_completions()
        self.system.engine.reorder.released.clear()

    @rule()
    def rebalance(self):
        report = self.system.rebalance()
        assert report.is_even

    @invariant()
    def copies_consistent(self):
        system = self.system
        assert system.pipeline.tcam_matches_table()
        table = system.pipeline.trie_stage.table.table
        union = {}
        for chip in system.engine.chips:
            for prefix, hop in chip.table.routes():
                # Range-spanning entries are replicated across chips but
                # must agree with the compressed table everywhere.
                assert union.setdefault(prefix, hop) == hop
        assert union == table
        # Every entry is present in the chip owning its first address.
        for prefix, hop in table.items():
            home = system._home_of(prefix.network)
            assert system.engine.chips[home].table.get(prefix) == hop


TestClueSystemMachine = ClueSystemMachine.TestCase
TestClueSystemMachine.settings = settings(
    max_examples=8, stateful_step_count=15, deadline=None
)
