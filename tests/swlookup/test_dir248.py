"""Tests for the DIR-24-8 software lookup baseline."""

import random

from repro.net.prefix import Prefix
from repro.swlookup.dir248 import Dir248Table
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


def realistic_routes(rng, count):
    routes = {}
    while len(routes) < count:
        length = rng.choice([8, 12, 16, 20, 24, 26, 28, 32])
        routes[Prefix(rng.getrandbits(length), length)] = rng.randint(1, 9)
    return routes


class TestLookup:
    def test_matches_trie_on_random_tables(self, rng):
        routes = realistic_routes(rng, 300)
        table = Dir248Table(routes.items())
        trie = BinaryTrie.from_routes(routes.items())
        for _ in range(2_000):
            address = rng.getrandbits(32)
            assert table.lookup(address) == trie.lookup(address)

    def test_short_prefix_one_access(self):
        table = Dir248Table([(Prefix.parse("10.0.0.0/8"), 1)])
        table.lookup(10 << 24)
        assert table.counters.memory_accesses == 1

    def test_long_prefix_two_accesses(self):
        table = Dir248Table([(Prefix.parse("10.0.0.0/28"), 1)])
        table.lookup(10 << 24)
        assert table.counters.memory_accesses == 2
        assert table.level2_blocks == 1

    def test_miss(self):
        table = Dir248Table([(Prefix.parse("10.0.0.0/8"), 1)])
        assert table.lookup(11 << 24) is None

    def test_hop_zero(self):
        table = Dir248Table([(Prefix.parse("10.0.0.0/8"), 0)])
        assert table.lookup(10 << 24) == 0


class TestUpdates:
    def test_withdraw_reverts_to_covering(self):
        table = Dir248Table(
            [(Prefix.parse("10.0.0.0/8"), 1), (Prefix.parse("10.1.0.0/16"), 2)]
        )
        address = (10 << 24) | (1 << 16)
        assert table.lookup(address) == 2
        table.delete(Prefix.parse("10.1.0.0/16"))
        assert table.lookup(address) == 1

    def test_short_prefix_update_is_expensive(self):
        """The known DIR-24-8 weakness: a /8 repaints 2^16 slots."""
        table = Dir248Table()
        written = table.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert written == 1 << 16

    def test_long_prefix_update_is_cheap(self):
        table = Dir248Table([(Prefix.parse("10.0.0.0/8"), 1)])
        written = table.insert(Prefix.parse("10.0.0.0/24"), 2)
        assert written == 1

    def test_churn_stays_correct(self, rng):
        routes = realistic_routes(rng, 150)
        table = Dir248Table(routes.items())
        trie = BinaryTrie.from_routes(routes.items())
        for _ in range(100):
            length = rng.choice([12, 16, 24, 28])
            prefix = Prefix(rng.getrandbits(length), length)
            if rng.random() < 0.5:
                hop = rng.randint(1, 9)
                trie.insert(prefix, hop)
                table.insert(prefix, hop)
            else:
                trie.delete(prefix)
                table.delete(prefix)
        for _ in range(1_500):
            address = rng.getrandbits(32)
            assert table.lookup(address) == trie.lookup(address)

    def test_delete_absent_is_free(self):
        table = Dir248Table()
        assert table.delete(Prefix.parse("10.0.0.0/8")) == 0


class TestAccounting:
    def test_memory_slots(self):
        table = Dir248Table([(Prefix.parse("10.0.0.0/28"), 1)])
        assert table.memory_slots() == (1 << 24) + 256

    def test_accesses_per_lookup_mostly_one(self, rng):
        routes = realistic_routes(rng, 300)
        table = Dir248Table(routes.items())
        for _ in range(1_000):
            table.lookup(rng.getrandbits(32))
        assert 1.0 <= table.accesses_per_lookup() <= 1.2
