"""Tests for the fixed-stride multibit trie."""

import pytest

from repro.net.prefix import Prefix
from repro.swlookup.multibit import MultibitTrie
from repro.trie.trie import BinaryTrie


def realistic_routes(rng, count):
    routes = {}
    while len(routes) < count:
        length = rng.choice([4, 8, 12, 15, 16, 20, 22, 24, 26, 28, 32])
        routes[Prefix(rng.getrandbits(length), length)] = rng.randint(1, 9)
    return routes


class TestConstruction:
    def test_strides_must_cover_32(self):
        with pytest.raises(ValueError):
            MultibitTrie(strides=(8, 8, 8))
        with pytest.raises(ValueError):
            MultibitTrie(strides=(16, 16, 0))

    def test_alternative_strides(self, rng):
        routes = realistic_routes(rng, 100)
        table = MultibitTrie(routes.items(), strides=(16, 8, 8))
        trie = BinaryTrie.from_routes(routes.items())
        for _ in range(1_000):
            address = rng.getrandbits(32)
            assert table.lookup(address) == trie.lookup(address)


class TestLookup:
    def test_matches_trie(self, rng):
        routes = realistic_routes(rng, 300)
        table = MultibitTrie(routes.items())
        trie = BinaryTrie.from_routes(routes.items())
        for _ in range(2_000):
            address = rng.getrandbits(32)
            assert table.lookup(address) == trie.lookup(address)

    def test_expansion_inside_stride(self):
        # a /4 expands into 16 level-0 slots (stride 8)
        table = MultibitTrie([(Prefix.from_bits("1010"), 7)])
        assert table.lookup(0b10100001 << 24) == 7
        assert table.lookup(0b10110000 << 24) is None

    def test_longer_expansion_wins(self):
        table = MultibitTrie(
            [(Prefix.from_bits("1010"), 1), (Prefix.from_bits("101000"), 2)]
        )
        assert table.lookup(0b10100000 << 24) == 2
        assert table.lookup(0b10101111 << 24) == 1

    def test_access_count_bounded_by_levels(self, rng):
        routes = realistic_routes(rng, 200)
        table = MultibitTrie(routes.items())
        for _ in range(500):
            table.lookup(rng.getrandbits(32))
        assert 1.0 <= table.accesses_per_lookup() <= 4.0


class TestUpdates:
    def test_withdraw_reverts_to_covering(self):
        table = MultibitTrie(
            [
                (Prefix.parse("10.0.0.0/8"), 1),
                (Prefix.parse("10.1.0.0/16"), 2),
            ]
        )
        address = (10 << 24) | (1 << 16)
        assert table.lookup(address) == 2
        table.delete(Prefix.parse("10.1.0.0/16"))
        assert table.lookup(address) == 1

    def test_update_cost_bounded_by_stride(self):
        table = MultibitTrie()
        # Worst case within one level: a prefix aligned to the level start
        # repaints 2^stride slots.
        written = table.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert written <= 1 << 8

    def test_churn_stays_correct(self, rng):
        routes = realistic_routes(rng, 150)
        table = MultibitTrie(routes.items())
        trie = BinaryTrie.from_routes(routes.items())
        for _ in range(150):
            length = rng.choice([4, 8, 15, 16, 24, 28, 32])
            prefix = Prefix(rng.getrandbits(length), length)
            if rng.random() < 0.5:
                hop = rng.randint(1, 9)
                trie.insert(prefix, hop)
                table.insert(prefix, hop)
            else:
                trie.delete(prefix)
                table.delete(prefix)
        for _ in range(1_500):
            address = rng.getrandbits(32)
            assert table.lookup(address) == trie.lookup(address)

    def test_delete_absent_is_free(self):
        assert MultibitTrie().delete(Prefix.parse("10.0.0.0/8")) == 0


class TestAccounting:
    def test_memory_grows_with_structure(self):
        small = MultibitTrie([(Prefix.parse("10.0.0.0/8"), 1)])
        deep = MultibitTrie([(Prefix.parse("10.1.2.3/32"), 1)])
        assert deep.memory_slots() > small.memory_slots()
        assert deep.node_count == 4
