"""Tests for leaf pushing (the classical overlap eliminator)."""

from repro.compress.verify import forwarding_equal, is_disjoint_table
from repro.net.prefix import Prefix
from repro.trie.leafpush import expansion_ratio, leaf_push, leaf_pushed_routes
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


def test_output_is_disjoint(rng):
    for _ in range(30):
        trie = BinaryTrie.from_routes(random_routes(rng, 12, max_len=8))
        assert leaf_push(trie).is_disjoint()


def test_forwarding_equivalent(rng):
    for _ in range(30):
        trie = BinaryTrie.from_routes(random_routes(rng, 10, max_len=7))
        assert forwarding_equal(trie, leaf_push(trie))


def test_paper_figure2_shape():
    # p = 1* with child q = 100* having a different hop: pushing splits p.
    trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("100"), 2)])
    pushed = leaf_pushed_routes(trie)
    assert pushed[bits("100")] == 2
    assert pushed[bits("101")] == 1
    assert pushed[bits("11")] == 1
    assert bits("1") not in pushed


def test_expansion_ratio_grows_with_punchouts():
    redundant = BinaryTrie.from_routes([(bits("1"), 1), (bits("11"), 1)])
    fragmenting = BinaryTrie.from_routes([(bits("1"), 1), (bits("1111"), 2)])
    assert expansion_ratio(redundant) <= 1.0
    assert expansion_ratio(fragmenting) > 1.0


def test_expansion_ratio_empty_trie():
    assert expansion_ratio(BinaryTrie()) == 1.0


def test_disjoint_input_is_fixed_point():
    trie = BinaryTrie.from_routes([(bits("00"), 1), (bits("01"), 2)])
    assert leaf_pushed_routes(trie) == trie.as_dict()


def test_real_tables_expand(small_trie):
    # The motivation for ONRTC: plain leaf pushing inflates real tables.
    assert expansion_ratio(small_trie) > 1.0
