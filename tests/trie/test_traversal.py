"""Tests for trie walks: regions, subtree routes, covering routes."""

from repro.net.prefix import ADDRESS_SPACE, Prefix
from repro.trie.traversal import (
    covering_route,
    iter_nodes,
    iter_regions,
    routed_subtree_sizes,
    subtree_routes,
)
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestIterRegions:
    def test_regions_partition_the_space(self, rng):
        for _ in range(20):
            trie = BinaryTrie.from_routes(random_routes(rng, 12, max_len=8))
            regions = list(iter_regions(trie))
            total = sum(prefix.size for prefix, _ in regions)
            assert total == ADDRESS_SPACE
            ordered = sorted(regions, key=lambda r: r[0].network)
            for (a, _), (b, _) in zip(ordered, ordered[1:]):
                assert a.broadcast < b.network  # pairwise disjoint

    def test_region_hops_match_lpm(self, rng):
        for _ in range(20):
            trie = BinaryTrie.from_routes(random_routes(rng, 10, max_len=7))
            for prefix, hop in iter_regions(trie):
                assert trie.lookup(prefix.network) == hop
                assert trie.lookup(prefix.broadcast) == hop

    def test_empty_trie_single_region(self):
        regions = list(iter_regions(BinaryTrie()))
        assert regions == [(Prefix.root(), None)]

    def test_single_route(self):
        trie = BinaryTrie.from_routes([(bits("1"), 5)])
        regions = dict(iter_regions(trie))
        assert regions[bits("1")] == 5
        assert regions[bits("0")] is None


class TestIterNodes:
    def test_prefixes_match_paths(self):
        trie = BinaryTrie.from_routes([(bits("10"), 1), (bits("0"), 2)])
        seen = {prefix for _, prefix in iter_nodes(trie)}
        assert seen == {
            Prefix.root(), bits("0"), bits("1"), bits("10"),
        }

    def test_node_count_matches(self, rng):
        trie = BinaryTrie.from_routes(random_routes(rng, 15, max_len=9))
        assert len(list(iter_nodes(trie))) == trie.node_count()


class TestSubtreeSizes:
    def test_counts(self):
        trie = BinaryTrie.from_routes(
            [(bits("0"), 1), (bits("00"), 2), (bits("1"), 3)]
        )
        sizes = dict(routed_subtree_sizes(trie))
        assert sizes[Prefix.root()] == 3
        assert sizes[bits("0")] == 2
        assert sizes[bits("00")] == 1
        assert sizes[bits("1")] == 1

    def test_postorder(self):
        trie = BinaryTrie.from_routes([(bits("00"), 1)])
        order = [prefix for prefix, _ in routed_subtree_sizes(trie)]
        assert order.index(bits("00")) < order.index(bits("0"))
        assert order[-1] == Prefix.root()


class TestSubtreeRoutes:
    def test_collects_descendants(self):
        trie = BinaryTrie.from_routes(
            [(bits("1"), 1), (bits("10"), 2), (bits("11"), 3), (bits("0"), 4)]
        )
        collected = dict(subtree_routes(trie, bits("1")))
        assert collected == {bits("1"): 1, bits("10"): 2, bits("11"): 3}

    def test_absent_path(self):
        trie = BinaryTrie.from_routes([(bits("0"), 1)])
        assert subtree_routes(trie, bits("11")) == []

    def test_root_collects_everything(self, rng):
        routes = dict(random_routes(rng, 20, max_len=8))
        trie = BinaryTrie.from_routes(routes.items())
        assert dict(subtree_routes(trie, Prefix.root())) == routes


class TestCoveringRoute:
    def test_finds_longest_ancestor(self):
        trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("10"), 2)])
        assert covering_route(trie, bits("101")) == (bits("10"), 2)
        assert covering_route(trie, bits("11")) == (bits("1"), 1)

    def test_self_counts(self):
        trie = BinaryTrie.from_routes([(bits("10"), 2)])
        assert covering_route(trie, bits("10")) == (bits("10"), 2)

    def test_none_when_uncovered(self):
        trie = BinaryTrie.from_routes([(bits("10"), 2)])
        assert covering_route(trie, bits("0")) is None
