"""Unit tests for the binary trie."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestBasicMapping:
    def test_insert_and_get(self):
        trie = BinaryTrie()
        assert trie.insert(bits("10"), 7)
        assert trie.get(bits("10")) == 7

    def test_insert_overwrite_returns_false(self):
        trie = BinaryTrie()
        trie.insert(bits("10"), 7)
        assert not trie.insert(bits("10"), 8)
        assert trie.get(bits("10")) == 8
        assert len(trie) == 1

    def test_insert_rejects_none_hop(self):
        with pytest.raises(ValueError):
            BinaryTrie().insert(bits("1"), None)

    def test_delete(self):
        trie = BinaryTrie.from_routes([(bits("10"), 1)])
        assert trie.delete(bits("10"))
        assert trie.get(bits("10")) is None
        assert len(trie) == 0

    def test_delete_missing_returns_false(self):
        assert not BinaryTrie().delete(bits("10"))

    def test_delete_structural_node_returns_false(self):
        trie = BinaryTrie.from_routes([(bits("101"), 1)])
        assert not trie.delete(bits("10"))  # structural only

    def test_contains(self):
        trie = BinaryTrie.from_routes([(bits("1"), 1)])
        assert bits("1") in trie
        assert bits("0") not in trie

    def test_len_tracks_routes(self):
        trie = BinaryTrie()
        trie.insert(bits("0"), 1)
        trie.insert(bits("1"), 2)
        trie.insert(bits("11"), 3)
        assert len(trie) == 3
        trie.delete(bits("11"))
        assert len(trie) == 2


class TestLookup:
    def test_longest_prefix_wins(self):
        trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("100"), 2)])
        assert trie.lookup(0b100 << 29) == 2
        assert trie.lookup(0b111 << 29) == 1

    def test_no_match(self):
        trie = BinaryTrie.from_routes([(bits("1"), 1)])
        assert trie.lookup(0) is None

    def test_default_route(self):
        trie = BinaryTrie.from_routes([(Prefix.root(), 9)])
        assert trie.lookup(0) == 9
        assert trie.lookup((1 << 32) - 1) == 9

    def test_lookup_prefix_returns_match(self):
        trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("100"), 2)])
        assert trie.lookup_prefix(0b100 << 29) == (bits("100"), 2)
        assert trie.lookup_prefix(0b110 << 29) == (bits("1"), 1)

    def test_lookup_prefix_none(self):
        assert BinaryTrie().lookup_prefix(123) is None

    def test_effective_hop(self):
        trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("100"), 2)])
        assert trie.effective_hop(bits("10")) == 1
        assert trie.effective_hop(bits("100")) == 2
        assert trie.effective_hop(bits("1000")) == 2
        assert trie.effective_hop(bits("0")) is None

    def test_lookup_agrees_with_linear_scan(self, rng):
        routes = random_routes(rng, 40, max_len=12)
        trie = BinaryTrie.from_routes(routes)
        for _ in range(300):
            address = rng.randrange(1 << 32)
            best = None
            for prefix, hop in routes:
                if prefix.contains_address(address):
                    if best is None or prefix.length > best[0].length:
                        best = (prefix, hop)
            assert trie.lookup(address) == (best[1] if best else None)


class TestPruning:
    def test_delete_prunes_leaf_chain(self):
        trie = BinaryTrie()
        trie.insert(bits("10101"), 1)
        assert trie.node_count() == 6
        trie.delete(bits("10101"))
        assert trie.node_count() == 1  # only the root remains

    def test_delete_keeps_needed_structure(self):
        trie = BinaryTrie.from_routes([(bits("10101"), 1), (bits("10"), 2)])
        trie.delete(bits("10101"))
        assert trie.node_count() == 3  # root, 1, 10
        assert trie.get(bits("10")) == 2

    def test_remove_route_reports_pruned(self):
        trie = BinaryTrie.from_routes([(bits("10101"), 1), (bits("10"), 2)])
        survivor, pruned = trie.remove_route(bits("10101"))
        assert len(pruned) == 3  # 101, 1010, 10101
        assert survivor is trie.find_node(bits("10"))

    def test_remove_route_absent(self):
        assert BinaryTrie().remove_route(bits("1")) is None

    def test_delete_internal_route_keeps_node(self):
        trie = BinaryTrie.from_routes([(bits("1"), 1), (bits("11"), 2)])
        trie.delete(bits("1"))
        assert trie.get(bits("11")) == 2
        assert trie.lookup(0b10 << 30) is None


class TestIteration:
    def test_routes_in_address_order(self, rng):
        routes = random_routes(rng, 30, max_len=10)
        trie = BinaryTrie.from_routes(routes)
        listed = trie.prefixes()
        assert listed == sorted(listed, key=lambda p: p.sort_key())
        assert set(listed) == {p for p, _ in routes}

    def test_as_dict_round_trip(self, rng):
        routes = dict(random_routes(rng, 25, max_len=8))
        trie = BinaryTrie.from_routes(routes.items())
        assert trie.as_dict() == routes

    def test_next_hops(self):
        trie = BinaryTrie.from_routes([(bits("0"), 3), (bits("1"), 1)])
        assert trie.next_hops() == [1, 3]

    def test_copy_is_independent(self):
        trie = BinaryTrie.from_routes([(bits("0"), 1)])
        clone = trie.copy()
        clone.insert(bits("1"), 2)
        assert len(trie) == 1 and len(clone) == 2


class TestOverlapStructure:
    def test_disjoint_true(self):
        trie = BinaryTrie.from_routes([(bits("00"), 1), (bits("01"), 2)])
        assert trie.is_disjoint()
        assert trie.overlap_count() == 0

    def test_disjoint_false(self):
        trie = BinaryTrie.from_routes([(bits("0"), 1), (bits("01"), 2)])
        assert not trie.is_disjoint()
        assert trie.overlap_count() == 1

    def test_overlap_count_nested_chain(self):
        trie = BinaryTrie.from_routes(
            [(bits("1"), 1), (bits("11"), 2), (bits("111"), 3)]
        )
        assert trie.overlap_count() == 2

    def test_empty_trie_is_disjoint(self):
        assert BinaryTrie().is_disjoint()


@given(
    st.lists(
        st.tuples(
            st.integers(0, 6).flatmap(
                lambda length: st.tuples(
                    st.integers(0, (1 << length) - 1 if length else 0),
                    st.just(length),
                )
            ),
            st.integers(1, 4),
        ),
        max_size=20,
    )
)
def test_insert_delete_round_trip(entries):
    """Inserting then deleting everything restores an empty trie."""
    trie = BinaryTrie()
    routes = {}
    for (value, length), hop in entries:
        routes[Prefix(value, length)] = hop
        trie.insert(Prefix(value, length), hop)
    assert trie.as_dict() == routes
    for prefix in list(routes):
        assert trie.delete(prefix)
    assert len(trie) == 0
    assert trie.node_count() == 1
