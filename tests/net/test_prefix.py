"""Unit tests for the Prefix value type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.prefix import (
    ADDRESS_SPACE,
    ADDRESS_WIDTH,
    Prefix,
    PrefixError,
    common_prefix,
    format_address,
    parse_address,
)

prefixes = st.integers(0, ADDRESS_WIDTH).flatmap(
    lambda length: st.builds(
        Prefix,
        st.integers(0, (1 << length) - 1 if length else 0),
        st.just(length),
    )
)
addresses = st.integers(0, ADDRESS_SPACE - 1)


class TestConstruction:
    def test_parse_round_trip(self):
        assert str(Prefix.parse("192.168.0.0/16")) == "192.168.0.0/16"

    def test_parse_root(self):
        assert Prefix.parse("0.0.0.0/0") == Prefix.root()

    def test_parse_host(self):
        prefix = Prefix.parse("10.1.2.3/32")
        assert prefix.length == 32
        assert prefix.network == (10 << 24) | (1 << 16) | (2 << 8) | 3

    def test_parse_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/8")

    def test_parse_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/33")

    def test_parse_rejects_garbage(self):
        with pytest.raises(PrefixError):
            Prefix.parse("not-a-prefix")

    def test_from_bits(self):
        assert Prefix.from_bits("100").value == 0b100
        assert Prefix.from_bits("100").length == 3

    def test_from_bits_star_suffix(self):
        assert Prefix.from_bits("100*") == Prefix.from_bits("100")

    def test_from_bits_empty_is_root(self):
        assert Prefix.from_bits("") == Prefix.root()

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(PrefixError):
            Prefix.from_bits("10x")

    def test_from_bits_rejects_too_long(self):
        with pytest.raises(PrefixError):
            Prefix.from_bits("0" * 33)

    def test_from_network(self):
        assert Prefix.from_network(10 << 24, 8) == Prefix.parse("10.0.0.0/8")

    def test_from_network_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.from_network((10 << 24) | 1, 8)

    def test_value_range_enforced(self):
        with pytest.raises(PrefixError):
            Prefix(4, 2)

    def test_root_value_must_be_zero(self):
        with pytest.raises(PrefixError):
            Prefix(1, 0)


class TestRelations:
    def test_contains_address(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains_address(10 << 24)
        assert prefix.contains_address((10 << 24) + 12345)
        assert not prefix.contains_address(11 << 24)

    def test_root_contains_everything(self):
        assert Prefix.root().contains_address(0)
        assert Prefix.root().contains_address(ADDRESS_SPACE - 1)

    def test_contains_prefix(self):
        assert Prefix.from_bits("1").contains(Prefix.from_bits("10"))
        assert not Prefix.from_bits("10").contains(Prefix.from_bits("1"))
        assert Prefix.from_bits("1").contains(Prefix.from_bits("1"))

    def test_overlap_is_containment(self):
        a, b = Prefix.from_bits("1"), Prefix.from_bits("101")
        assert a.overlaps(b) and b.overlaps(a)
        assert not Prefix.from_bits("10").overlaps(Prefix.from_bits("11"))

    def test_disjoint(self):
        assert Prefix.from_bits("00").is_disjoint(Prefix.from_bits("01"))

    @given(prefixes, prefixes)
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(prefixes, addresses)
    def test_contains_address_matches_range(self, prefix, address):
        inside = prefix.network <= address <= prefix.broadcast
        assert prefix.contains_address(address) == inside


class TestNavigation:
    def test_children(self):
        parent = Prefix.from_bits("10")
        assert parent.child(0) == Prefix.from_bits("100")
        assert parent.child(1) == Prefix.from_bits("101")

    def test_child_of_host_rejected(self):
        host = Prefix(0, 32)
        with pytest.raises(PrefixError):
            host.child(0)

    def test_child_bad_bit(self):
        with pytest.raises(PrefixError):
            Prefix.root().child(2)

    def test_parent(self):
        assert Prefix.from_bits("101").parent() == Prefix.from_bits("10")

    def test_parent_of_root_rejected(self):
        with pytest.raises(PrefixError):
            Prefix.root().parent()

    def test_sibling(self):
        assert Prefix.from_bits("10").sibling() == Prefix.from_bits("11")

    def test_bit_at(self):
        prefix = Prefix.from_bits("101")
        assert [prefix.bit_at(i) for i in range(3)] == [1, 0, 1]

    def test_bit_at_out_of_range(self):
        with pytest.raises(PrefixError):
            Prefix.from_bits("101").bit_at(3)

    def test_walk_bits(self):
        assert list(Prefix.from_bits("1101").walk_bits()) == [1, 1, 0, 1]

    @given(prefixes)
    def test_child_parent_round_trip(self, prefix):
        if prefix.length < ADDRESS_WIDTH:
            assert prefix.child(0).parent() == prefix
            assert prefix.child(1).parent() == prefix

    def test_iter_subprefixes(self):
        subs = list(Prefix.from_bits("1").iter_subprefixes(3))
        assert len(subs) == 4
        assert all(Prefix.from_bits("1").contains(sub) for sub in subs)

    def test_iter_subprefixes_shorter_rejected(self):
        with pytest.raises(PrefixError):
            list(Prefix.from_bits("101").iter_subprefixes(2))


class TestTcamView:
    def test_ternary_pattern(self):
        pattern = Prefix.from_bits("10").ternary()
        assert pattern == "10" + "*" * 30

    def test_matches_alias(self):
        prefix = Prefix.from_bits("1")
        assert prefix.matches(1 << 31)
        assert not prefix.matches(0)


class TestOrderingAndHashing:
    def test_sort_key_orders_by_address(self):
        ordered = sorted(
            [Prefix.from_bits("1"), Prefix.from_bits("01"), Prefix.from_bits("00")]
        )
        assert ordered[0] == Prefix.from_bits("00")
        assert ordered[-1] == Prefix.from_bits("1")

    def test_covering_sorts_before_covered(self):
        assert Prefix.from_bits("1") < Prefix.from_bits("10")

    def test_hashable_and_equal(self):
        assert len({Prefix.from_bits("1"), Prefix.from_bits("1")}) == 1

    def test_not_equal_to_other_types(self):
        assert Prefix.root() != "0.0.0.0/0"

    @given(prefixes)
    def test_str_parse_round_trip(self, prefix):
        assert Prefix.parse(str(prefix)) == prefix


class TestAddressHelpers:
    def test_parse_format_round_trip(self):
        assert format_address(parse_address("1.2.3.4")) == "1.2.3.4"

    def test_parse_rejects_short(self):
        with pytest.raises(PrefixError):
            parse_address("1.2.3")

    def test_parse_rejects_large_octet(self):
        with pytest.raises(PrefixError):
            parse_address("1.2.3.256")

    def test_format_rejects_out_of_range(self):
        with pytest.raises(PrefixError):
            format_address(ADDRESS_SPACE)

    @given(addresses)
    def test_format_parse_round_trip(self, address):
        assert parse_address(format_address(address)) == address


class TestCommonPrefix:
    def test_disjoint_pair(self):
        result = common_prefix(Prefix.from_bits("00"), Prefix.from_bits("01"))
        assert result == Prefix.from_bits("0")

    def test_nested_pair(self):
        result = common_prefix(Prefix.from_bits("1"), Prefix.from_bits("101"))
        assert result == Prefix.from_bits("1")

    def test_identical(self):
        prefix = Prefix.from_bits("1100")
        assert common_prefix(prefix, prefix) == prefix

    @given(prefixes, prefixes)
    def test_common_prefix_contains_both(self, a, b):
        shared = common_prefix(a, b)
        assert shared.contains(a) and shared.contains(b)
