"""Tests for the repro-clue command-line interface."""

import pytest

from repro.cli import main
from repro.workload.traces import load_table


@pytest.fixture()
def table_file(tmp_path):
    path = tmp_path / "table.txt"
    assert main(["gen-rib", "--size", "600", "--seed", "3", "-o", str(path)]) == 0
    return path


class TestGenerate:
    def test_gen_rib(self, table_file):
        assert len(load_table(table_file)) == 600

    def test_gen_traffic(self, tmp_path, table_file):
        out = tmp_path / "packets.txt"
        code = main(
            [
                "gen-traffic",
                "--table",
                str(table_file),
                "--count",
                "500",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert len(out.read_text().splitlines()) == 501  # header comment

    def test_gen_updates(self, tmp_path, table_file):
        out = tmp_path / "updates.txt"
        code = main(
            [
                "gen-updates",
                "--table",
                str(table_file),
                "--count",
                "200",
                "--structural",
                "-o",
                str(out),
            ]
        )
        assert code == 0


class TestCompress:
    def test_compress_verify(self, tmp_path, table_file, capsys):
        out = tmp_path / "compressed.txt"
        code = main(
            [
                "compress",
                "--table",
                str(table_file),
                "--verify",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "verified" in captured
        assert len(load_table(out)) < 600

    def test_strict_mode(self, table_file, capsys):
        assert (
            main(
                [
                    "compress",
                    "--table",
                    str(table_file),
                    "--mode",
                    "strict",
                    "--verify",
                ]
            )
            == 0
        )


class TestPartitionSimulateReplay:
    @pytest.mark.parametrize("algorithm", ["even", "subtree", "idbit"])
    def test_partition(self, table_file, algorithm, capsys):
        code = main(
            [
                "partition",
                "--table",
                str(table_file),
                "--count",
                "8",
                "--algorithm",
                algorithm,
            ]
        )
        assert code == 0
        assert "max/mean" in capsys.readouterr().out

    @pytest.mark.parametrize("scheme", ["clue", "clpl", "rr"])
    def test_simulate(self, table_file, scheme, capsys):
        code = main(
            [
                "simulate",
                "--table",
                str(table_file),
                "--scheme",
                scheme,
                "--count",
                "2000",
            ]
        )
        assert code == 0
        assert "speedup" in capsys.readouterr().out

    def test_simulate_from_trace(self, tmp_path, table_file, capsys):
        packets = tmp_path / "packets.txt"
        main(
            [
                "gen-traffic",
                "--table",
                str(table_file),
                "--count",
                "1000",
                "-o",
                str(packets),
            ]
        )
        code = main(
            [
                "simulate",
                "--table",
                str(table_file),
                "--packets",
                str(packets),
            ]
        )
        assert code == 0
        assert "packets" in capsys.readouterr().out

    @pytest.mark.parametrize("pipeline", ["clue", "clpl"])
    def test_replay_updates(self, tmp_path, table_file, pipeline, capsys):
        updates = tmp_path / "updates.txt"
        main(
            [
                "gen-updates",
                "--table",
                str(table_file),
                "--count",
                "300",
                "-o",
                str(updates),
            ]
        )
        code = main(
            [
                "replay-updates",
                "--table",
                str(table_file),
                "--updates",
                str(updates),
                "--pipeline",
                pipeline,
            ]
        )
        assert code == 0
        assert "TTF total" in capsys.readouterr().out

    def test_replay_lazy(self, tmp_path, table_file):
        updates = tmp_path / "updates.txt"
        main(
            [
                "gen-updates",
                "--table",
                str(table_file),
                "--count",
                "200",
                "-o",
                str(updates),
            ]
        )
        assert (
            main(
                [
                    "replay-updates",
                    "--table",
                    str(table_file),
                    "--updates",
                    str(updates),
                    "--lazy",
                ]
            )
            == 0
        )


class TestFaults:
    @pytest.fixture()
    def fault_file(self, tmp_path):
        path = tmp_path / "faults.txt"
        code = main(
            [
                "gen-faults",
                "--seed",
                "5",
                "--horizon",
                "8000",
                "--chips",
                "4",
                "-o",
                str(path),
            ]
        )
        assert code == 0
        return path

    def test_gen_faults_roundtrips(self, fault_file):
        from repro.workload.traces import load_faults

        schedule = load_faults(fault_file)
        assert len(schedule) > 0
        assert schedule.seed == 5

    def test_simulate_with_faults(self, table_file, fault_file, capsys):
        code = main(
            [
                "simulate",
                "--table",
                str(table_file),
                "--faults",
                str(fault_file),
                "--count",
                "10000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chip failures" in out
        assert "availability" in out

    def test_inject_faults_with_rebalance(
        self, table_file, fault_file, capsys
    ):
        code = main(
            [
                "inject-faults",
                "--table",
                str(table_file),
                "--faults",
                str(fault_file),
                "--count",
                "10000",
                "--rebalance",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "audit repairs" in out
        assert "rebalanced over" in out
        assert "even=True" in out


class TestDurability:
    def test_crash_drill_round_trip(self, tmp_path, table_file, capsys):
        """simulate --crash-at, then verify-snapshot, then restore."""
        state = tmp_path / "state"
        code = main(
            [
                "simulate",
                "--table",
                str(table_file),
                "--journal",
                str(state),
                "--checkpoint-every",
                "40",
                "--crash-at",
                "90",
                "--update-count",
                "120",
            ]
        )
        assert code == 0
        assert "crashed after 90" in capsys.readouterr().out

        assert main(["verify-snapshot", "--dir", str(state)]) == 0
        verified = capsys.readouterr().out
        assert "digest ok" in verified and "invariants ok" in verified

        code = main(["restore", "--dir", str(state), "--fingerprint"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "fingerprint: " in out

    def test_journal_run_to_completion(self, tmp_path, table_file, capsys):
        state = tmp_path / "state"
        code = main(
            [
                "simulate",
                "--table",
                str(table_file),
                "--journal",
                str(state),
                "--update-count",
                "80",
            ]
        )
        assert code == 0
        assert "durability" in capsys.readouterr().out
        # The completed run left a restorable directory behind.
        assert main(["checkpoint", "--dir", str(state)]) == 0
        assert "checkpointed to" in capsys.readouterr().out

    def test_crash_flags_need_journal(self, table_file, capsys):
        code = main(
            [
                "simulate",
                "--table",
                str(table_file),
                "--crash-at",
                "10",
            ]
        )
        assert code == 2
        assert "need --journal" in capsys.readouterr().err

    def test_restore_missing_directory_exits_2(self, tmp_path, capsys):
        code = main(["restore", "--dir", str(tmp_path / "nowhere")])
        assert code == 2
        assert "error: no usable snapshot" in capsys.readouterr().err

    def test_verify_corrupt_snapshot_exits_2(
        self, tmp_path, table_file, capsys
    ):
        state = tmp_path / "state"
        main(
            [
                "simulate",
                "--table",
                str(table_file),
                "--journal",
                str(state),
                "--update-count",
                "40",
            ]
        )
        capsys.readouterr()
        snapshot = sorted((state / "snapshots").glob("*.ckpt"))[-1]
        data = bytearray(snapshot.read_bytes())
        data[-8] ^= 0xFF
        snapshot.write_bytes(bytes(data))
        code = main(["verify-snapshot", "--snapshot", str(snapshot)])
        assert code == 2
        assert "error: " in capsys.readouterr().err


class TestErrorHandling:
    def test_malformed_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "faults.txt"
        bad.write_text("10 explode 1\n")
        code = main(
            [
                "inject-faults",
                "--table",
                str(bad),
                "--faults",
                str(bad),
            ]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert str(bad) in captured.err

    def test_invalid_value_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "gen-faults",
                "--horizon",
                "0",
                "-o",
                str(tmp_path / "faults.txt"),
            ]
        )
        assert code == 2
        assert "error: horizon" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "--table",
                str(tmp_path / "does-not-exist.txt"),
            ]
        )
        assert code == 2
        assert "error: " in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["simulate", "inject-faults"])
    def test_fault_chip_out_of_range_exits_2(
        self, tmp_path, table_file, command, capsys
    ):
        faults = tmp_path / "faults.txt"
        faults.write_text("seed 1\n10 chip-down 7\n")
        code = main(
            [
                command,
                "--table",
                str(table_file),
                "--faults",
                str(faults),
                "--chips",
                "4",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "targets chip 7" in err


class TestExitCodeConventions:
    """Every subcommand: usage errors exit 2, operational failures exit 1."""

    def all_subcommands(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        action = next(
            a
            for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        return sorted(action.choices)

    def test_every_subcommand_rejects_unknown_flags_with_2(self, capsys):
        commands = self.all_subcommands()
        assert "serve" in commands and "bench-serve" in commands
        for command in commands:
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--definitely-not-a-real-flag"])
            assert excinfo.value.code == 2, command
            capsys.readouterr()

    def test_version_flag_exits_0(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro-clue ")

    def test_serve_without_table_or_restore_exits_2(self, capsys):
        assert main(["serve"]) == 2
        assert "error: " in capsys.readouterr().err

    def test_serve_restore_without_journal_exits_2(self, capsys):
        assert main(["serve", "--restore"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_serve_missing_table_file_exits_2(self, tmp_path, capsys):
        code = main(["serve", "--table", str(tmp_path / "missing.txt")])
        assert code == 2
        assert "error: " in capsys.readouterr().err

    def test_bench_serve_below_floor_exits_1(self, table_file, capsys):
        code = main(
            [
                "bench-serve",
                "--table",
                str(table_file),
                "--batches",
                "2",
                "--batch-size",
                "32",
                "--floor",
                "1e12",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().err

    def test_bench_serve_writes_report(self, table_file, tmp_path, capsys):
        out = tmp_path / "serve.json"
        code = main(
            [
                "bench-serve",
                "--table",
                str(table_file),
                "--batches",
                "2",
                "--batch-size",
                "32",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        import json

        report = json.loads(out.read_text())
        assert report["lookups"] == 64
        assert report["busy"] == 0
