"""Tests for the integrated ClueSystem facade."""

import pytest

from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator


@pytest.fixture(scope="module")
def system_rib():
    from repro.workload.ribgen import RibParameters, generate_rib

    return generate_rib(9, RibParameters(size=3_000))


class TestConstruction:
    def test_compression_applied(self, system_rib):
        system = ClueSystem(system_rib)
        report = system.compression_report()
        assert report.original_entries == len(system_rib)
        assert report.compressed_entries < len(system_rib)

    def test_partitions_even_and_mapped(self, system_rib):
        system = ClueSystem(system_rib)
        sizes = system.partition_result.sizes()
        assert max(sizes) - min(sizes) <= 1
        assert len(sizes) == 32
        assert sorted(set(system.partition_to_chip)) == [0, 1, 2, 3]

    def test_chips_union_is_compressed_table(self, system_rib):
        system = ClueSystem(system_rib)
        union = {}
        for chip in system.engine.chips:
            for prefix, hop in chip.table.routes():
                assert prefix not in union
                union[prefix] = hop
        assert union == system.pipeline.trie_stage.table.table

    def test_dred_banks_shared(self, system_rib):
        system = ClueSystem(system_rib)
        assert system.pipeline.dred_stage.caches == [
            chip.dred for chip in system.engine.chips
        ]

    def test_custom_config(self, system_rib):
        config = SystemConfig(
            engine=EngineConfig(chip_count=2), partitions_per_chip=4
        )
        system = ClueSystem(system_rib, config)
        assert system.partition_result.count == 8
        assert len(system.engine.chips) == 2


class TestOperation:
    def test_lookup(self, system_rib):
        system = ClueSystem(system_rib)
        prefix, hop = system_rib[0]
        assert system.lookup(prefix.network) is not None

    def test_traffic_processing(self, system_rib):
        system = ClueSystem(system_rib)
        stats = system.process_traffic(
            TrafficGenerator(system_rib, seed=1), 5_000
        )
        assert stats.completions == 5_000
        assert system.engine.verify_completions()

    def test_interleaved_updates_and_traffic(self, system_rib):
        system = ClueSystem(system_rib)
        traffic = TrafficGenerator(system_rib, seed=2)
        updates = UpdateGenerator(system_rib, seed=3)
        for _ in range(4):
            system.process_traffic(traffic, 2_000)
            assert system.engine.verify_completions()
            system.engine.reorder.released.clear()
            for message in updates.take(80):
                system.apply_update(message)
            # invariants after churn
            assert system.pipeline.tcam_matches_table()
            union = {}
            for chip in system.engine.chips:
                union.update(chip.table.as_dict())
            assert union == system.pipeline.trie_stage.table.table

    def test_range_spanning_entry_served_everywhere(self, system_rib, rng):
        """Regression: an update can emit an entry spanning several frozen
        partition ranges; every homed chip must be able to serve it."""
        system = ClueSystem(system_rib)
        from repro.net.prefix import Prefix
        from repro.workload.updategen import UpdateKind, UpdateMessage

        wide = Prefix(1, 2)  # 64.0.0.0/2 — spans many partitions
        system.apply_update(
            UpdateMessage(UpdateKind.ANNOUNCE, wide, 99, 0.0)
        )
        reference = system.pipeline.trie_stage.table.source
        for _ in range(400):
            address = wide.network + rng.randrange(wide.size)
            expected = reference.lookup(address)
            home_chip = system.engine.chips[system._home_of(address)]
            assert home_chip.table.lookup(address) == expected

    def test_report_lines(self, system_rib):
        system = ClueSystem(system_rib)
        system.process_traffic(TrafficGenerator(system_rib, seed=4), 1_000)
        lines = system.report().summary_lines()
        assert any("compression" in line for line in lines)
        assert any("lookup" in line for line in lines)
