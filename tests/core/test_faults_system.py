"""System-level fault tolerance: failover, rebalance, audit, storms."""

import pytest

from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.faults import FaultSchedule
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator


@pytest.fixture(scope="module")
def system_rib():
    return generate_rib(13, RibParameters(size=3_000))


def fresh_system(system_rib, **config_kwargs):
    config = SystemConfig(
        engine=EngineConfig(chip_count=4), **config_kwargs
    )
    return ClueSystem(system_rib, config)


class TestFailoverAcceptance:
    def test_chip_death_mid_run(self, system_rib):
        """Kill 1 of 4 chips mid-run: conservation + correct next hops."""
        system = fresh_system(system_rib)
        schedule = FaultSchedule(seed=3).chip_down(1_000, chip=1)
        system.attach_faults(schedule)
        stats = system.process_traffic(
            TrafficGenerator(system_rib, seed=17), 10_000
        )
        assert stats.completions == stats.arrivals == 10_000
        assert system.engine.verify_completions()
        assert stats.failed_over_packets > 0
        assert stats.chip_failures == 1

    def test_rebalance_spreads_over_survivors(self, system_rib):
        system = fresh_system(system_rib)
        system.fail_chip(1)
        report = system.rebalance()
        assert report.survivor_chips == [0, 2, 3]
        assert report.is_even
        # The dead chip carries nothing; survivors split the table evenly
        # (each chip holds partitions_per_chip partitions of spread ≤ 1).
        sizes = [len(chip.table) for chip in system.engine.chips]
        assert sizes[1] == 0
        live = [sizes[i] for i in (0, 2, 3)]
        assert max(live) - min(live) <= system.config.partitions_per_chip
        assert sum(live) == len(system.pipeline.trie_stage.table.table)
        # Traffic after the rebalance is still answered correctly.
        system.process_traffic(TrafficGenerator(system_rib, seed=18), 3_000)
        assert system.engine.verify_completions()

    def test_recovery_then_rebalance_folds_chip_back(self, system_rib):
        system = fresh_system(system_rib)
        system.fail_chip(2)
        system.rebalance()
        system.recover_chip(2)
        report = system.rebalance()
        assert report.survivor_chips == [0, 1, 2, 3]
        assert all(len(chip.table) > 0 for chip in system.engine.chips)


class TestChipAudit:
    def test_clean_system_audits_clean(self, system_rib):
        system = fresh_system(system_rib)
        report = system.verify_chips()
        assert report.clean
        assert report.chips_checked == [0, 1, 2, 3]
        assert report.entries_checked >= len(
            system.pipeline.trie_stage.table.table
        )

    def test_detects_and_repairs_corruption(self, system_rib):
        system = fresh_system(system_rib)
        schedule = (
            FaultSchedule(seed=5).corrupt(0, chip=0).corrupt(0, chip=2)
        )
        system.attach_faults(schedule)
        system.process_traffic(TrafficGenerator(system_rib, seed=19), 100)
        assert system.engine.stats.corrupted_entries == 2
        detected = system.verify_chips(repair=False)
        assert detected.hops_repaired == 2
        repaired = system.verify_chips(repair=True)
        assert repaired.hops_repaired == 2
        assert system.verify_chips().clean
        assert system.report().chip_repairs == 2
        assert any(
            "repaired" in line for line in system.report().summary_lines()
        )

    def test_repairs_stray_and_missing(self, system_rib):
        system = fresh_system(system_rib)
        chip = system.engine.chips[0]
        prefix, hop = next(iter(chip.table.routes()))
        chip.table.delete(prefix)
        from repro.net.prefix import Prefix

        stray = Prefix.parse("240.0.0.0/5")
        system.engine.chips[1].table.insert(stray, 99)
        report = system.verify_chips()
        assert report.missing_restored == 1
        assert report.stray_removed == 1
        assert chip.table.get(prefix) == hop
        assert system.engine.chips[1].table.get(stray) is None

    def test_audit_step_round_robin(self, system_rib):
        system = fresh_system(system_rib)
        checked = [system.audit_step().chips_checked[0] for _ in range(5)]
        assert checked == [0, 1, 2, 3, 0]


class TestStormBackpressure:
    def test_storm_sheds_and_defers(self, system_rib):
        system = fresh_system(
            system_rib,
            update_queue_capacity=32,
            storm_high_watermark=0.5,
            storm_low_watermark=0.25,
        )
        schedule = FaultSchedule(seed=7).storm(10, count=200)
        system.attach_faults(schedule)
        system.process_traffic(TrafficGenerator(system_rib, seed=21), 2_000)
        stats = system.engine.stats
        assert stats.shed_updates > 0
        assert stats.deferred_updates > 0
        # Lookups stayed correct throughout the burst.
        assert system.engine.verify_completions()
        # Drain flushes the deferred TCAM writes: mirror coherent again.
        system.drain_updates()
        assert system.pipeline.tcam_matches_table()
        assert system.scheduler.stats.pending_flush == 0

    def test_chips_track_table_through_storm(self, system_rib):
        system = fresh_system(
            system_rib,
            update_queue_capacity=16,
            storm_high_watermark=0.25,
            storm_low_watermark=0.0,
        )
        schedule = FaultSchedule(seed=9).storm(0, count=60)
        system.attach_faults(schedule)
        system.process_traffic(TrafficGenerator(system_rib, seed=22), 500)
        system.drain_updates()
        # Even with deferred TCAM writes, the live chip tables followed
        # every diff — the audit finds nothing to fix.
        assert system.verify_chips().clean

    def test_dred_exclusion_holds_after_faults(self, system_rib):
        system = fresh_system(system_rib)
        schedule = (
            FaultSchedule(seed=11)
            .chip_down(500, chip=3)
            .storm(800, count=50)
            .chip_up(2_000, chip=3)
        )
        system.attach_faults(schedule)
        system.process_traffic(TrafficGenerator(system_rib, seed=23), 4_000)
        system.drain_updates()
        assert system.check_dred_exclusion()
        assert system.engine.verify_completions()
