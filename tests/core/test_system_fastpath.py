"""ClueSystem under the ``fast`` lookup backend.

The integrated system must behave identically on every backend — same
engine statistics, same lookups, same snapshots — while the fast backend
actually takes the fused turbo loop for calm all-chips-alive traffic.
These tests drive the full facade (traffic, updates, rebalance, failover,
checkpoint/restore) rather than the bare engine.
"""

import pytest

from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator


@pytest.fixture(scope="module")
def system_rib():
    return generate_rib(21, RibParameters(size=3_000))


def fast_system(system_rib):
    return ClueSystem(
        system_rib,
        SystemConfig(engine=EngineConfig(lookup_backend="fast")),
    )


def trie_system(system_rib):
    return ClueSystem(system_rib)


class TestTrafficParity:
    def test_stats_fingerprint_matches_trie(self, system_rib):
        results = {}
        for name, builder in (("fast", fast_system), ("trie", trie_system)):
            system = builder(system_rib)
            stats = system.process_traffic(
                TrafficGenerator(system_rib, seed=5), 4_000
            )
            assert system.engine.verify_completions()
            results[name] = stats.fingerprint()
        assert results["fast"] == results["trie"]

    def test_construction_certifies_disjoint_tables(self, system_rib):
        system = fast_system(system_rib)
        assert system.engine._disjoint_token is not None

    def test_control_plane_lookup_unchanged(self, system_rib):
        fast = fast_system(system_rib)
        trie = trie_system(system_rib)
        for prefix, _hop in system_rib[:300]:
            assert fast.lookup(prefix.network) == trie.lookup(prefix.network)


class TestUpdatesUnderFastBackend:
    def test_updates_apply_and_parity_survives(self, system_rib):
        """Updates invalidate the disjointness certificate (mutation
        counters move); traffic afterwards must still match the trie
        system applying the identical update stream."""
        fingerprints = {}
        for name, builder in (("fast", fast_system), ("trie", trie_system)):
            system = builder(system_rib)
            traffic = TrafficGenerator(system_rib, seed=7)
            system.process_traffic(traffic, 2_000)
            samples = system.apply_updates(
                UpdateGenerator(system_rib, seed=9).take(200)
            )
            assert len(samples) == 200
            # (verify_completions is not applicable here: completions
            # recorded before the updates are checked against the *new*
            # reference table.  Cross-backend fingerprint equality is the
            # correctness bar.)
            stats = system.process_traffic(traffic, 2_000)
            fingerprints[name] = stats.fingerprint()
        assert fingerprints["fast"] == fingerprints["trie"]

    def test_rebalance_renews_certificate(self, system_rib):
        system = fast_system(system_rib)
        system.apply_updates(UpdateGenerator(system_rib, seed=11).take(100))
        token_after_updates = system.engine._disjoint_token
        report = system.rebalance()
        assert report.partition_sizes
        token_after_rebalance = system.engine._disjoint_token
        assert token_after_rebalance != token_after_updates
        # The renewed certificate must actually match the live tables.
        assert token_after_rebalance == tuple(
            (id(chip.table), chip.table.mutations)
            for chip in system.engine.chips
        )
        stats = system.process_traffic(
            TrafficGenerator(system_rib, seed=13), 2_000
        )
        assert stats.completions == stats.arrivals


class TestFailoverUnderFastBackend:
    def test_chip_death_falls_back_and_recovers(self, system_rib):
        fingerprints = {}
        for name, builder in (("fast", fast_system), ("trie", trie_system)):
            system = builder(system_rib)
            system.fail_chip(1)
            stats = system.process_traffic(
                TrafficGenerator(system_rib, seed=17), 2_000
            )
            assert system.engine.verify_completions()
            assert stats.failed_over_packets > 0
            system.recover_chip(1)
            stats = system.process_traffic(
                TrafficGenerator(system_rib, seed=17), 1_000
            )
            fingerprints[name] = stats.fingerprint()
        assert fingerprints["fast"] == fingerprints["trie"]


class TestSnapshotRoundTrip:
    def test_backend_survives_capture_restore(self, system_rib):
        system = fast_system(system_rib)
        system.process_traffic(TrafficGenerator(system_rib, seed=19), 1_500)
        system.apply_updates(UpdateGenerator(system_rib, seed=23).take(50))
        fingerprint = system.state_fingerprint()

        restored = ClueSystem.from_state(system.capture_state())
        assert restored.config.engine.lookup_backend == "fast"
        assert restored.state_fingerprint() == fingerprint
        # The restored chips actually run the fast tables.
        from repro.engine.fastlpm import FastLpmTable

        assert all(
            type(chip.table) is FastLpmTable for chip in restored.engine.chips
        )
        restored.process_traffic(TrafficGenerator(system_rib, seed=29), 1_000)
        assert restored.engine.verify_completions(covered_only=True)

    def test_trie_snapshot_restores_as_trie(self, system_rib):
        system = trie_system(system_rib)
        restored = ClueSystem.from_state(system.capture_state())
        assert restored.config.engine.lookup_backend == "trie"
