"""Tests for ClueSystem idle-time maintenance: recompress and rebalance."""

import pytest

from repro.core import ClueSystem, SystemConfig
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator


@pytest.fixture(scope="module")
def churned_inputs():
    routes = generate_rib(19, RibParameters(size=3_000))
    return routes


def _churn(system, routes, count=500, seed=3):
    updates = UpdateGenerator(routes, seed=seed)
    for message in updates.take(count):
        system.apply_update(message)


def _chip_union(system):
    """Union of chip tables; entries spanning multiple partition ranges
    are legitimately replicated, so only hop consistency is asserted."""
    union = {}
    for chip in system.engine.chips:
        for prefix, hop in chip.table.routes():
            assert union.setdefault(prefix, hop) == hop
    return union


class TestRecompress:
    def test_lazy_drift_and_recompress(self, churned_inputs):
        system = ClueSystem(
            churned_inputs, SystemConfig(lazy_compression=True)
        )
        _churn(system, churned_inputs)
        table = system.pipeline.trie_stage.table
        assert table.minimality_gap() > 1.0
        diff = system.recompress()
        assert not diff.is_empty
        assert table.minimality_gap() == pytest.approx(1.0)
        # All three copies stay consistent.
        assert system.pipeline.tcam_matches_table()
        assert _chip_union(system) == table.table

    def test_exact_mode_recompress_is_noop(self, churned_inputs):
        system = ClueSystem(churned_inputs)
        _churn(system, churned_inputs, count=200)
        assert system.recompress().is_empty

    def test_lookups_correct_after_recompress(self, churned_inputs):
        system = ClueSystem(
            churned_inputs, SystemConfig(lazy_compression=True)
        )
        _churn(system, churned_inputs)
        system.recompress()
        system.process_traffic(
            TrafficGenerator(churned_inputs, seed=4), 3_000
        )
        assert system.engine.verify_completions()


class TestRebalance:
    def test_restores_evenness(self, churned_inputs):
        system = ClueSystem(churned_inputs)
        _churn(system, churned_inputs)
        sizes = [len(chip.table) for chip in system.engine.chips]
        report = system.rebalance()
        assert report.is_even
        new_sizes = [len(chip.table) for chip in system.engine.chips]
        assert max(new_sizes) - min(new_sizes) <= (
            system.config.partitions_per_chip
        )
        assert report.moved_entries >= 0
        del sizes

    def test_union_preserved(self, churned_inputs):
        system = ClueSystem(churned_inputs)
        _churn(system, churned_inputs)
        before = system.pipeline.trie_stage.table.table
        system.rebalance()
        assert _chip_union(system) == before

    def test_dred_exclusion_invariant_after_rebalance(self, churned_inputs):
        system = ClueSystem(churned_inputs)
        # Warm the DReds with traffic, churn, then rebalance.
        system.process_traffic(
            TrafficGenerator(churned_inputs, seed=5), 5_000
        )
        _churn(system, churned_inputs, count=200)
        report = system.rebalance()
        for chip in system.engine.chips:
            assert len(chip.dred) == 0  # flushed
        assert report.flushed_dred_entries >= 0
        # Traffic after rebalance refills the DReds and stays correct.
        system.engine.reorder.released.clear()
        system.process_traffic(
            TrafficGenerator(churned_inputs, seed=6), 5_000
        )
        assert system.engine.verify_completions()
        for chip in system.engine.chips:
            own = set(chip.table.prefixes())
            assert not (own & set(chip.dred._entries))

    def test_updates_after_rebalance_route_correctly(self, churned_inputs):
        system = ClueSystem(churned_inputs)
        _churn(system, churned_inputs, count=200)
        system.rebalance()
        _churn(system, churned_inputs, count=200, seed=9)
        assert _chip_union(system) == system.pipeline.trie_stage.table.table
        assert system.pipeline.tcam_matches_table()
