"""Tests for the analytical models and reporting helpers."""

import pytest

from repro.analysis.evenness import (
    coefficient_of_variation,
    jain_fairness,
    max_mean_ratio,
    spread,
)
from repro.analysis.fitting import cubic_fit, polyfit, polyval
from repro.analysis.speedup import (
    bound_satisfied,
    implied_utilisation,
    required_hit_rate,
    worst_case_speedup,
)
from repro.analysis.summarize import format_percent, format_series, format_table


class TestSpeedupBound:
    def test_equation_five(self):
        # t = (N-1)h + 1
        assert worst_case_speedup(4, 1.0) == 4.0
        assert worst_case_speedup(4, 2 / 3) == pytest.approx(3.0)
        assert worst_case_speedup(2, 0.5) == 1.5

    def test_equation_four(self):
        # h >= (N-2)/(N-1)
        assert required_hit_rate(4) == pytest.approx(2 / 3)
        assert required_hit_rate(2) == 0.0

    def test_bound_check(self):
        assert bound_satisfied(4, 0.9, 3.8)
        assert not bound_satisfied(4, 0.9, 3.0)
        # below the validity domain the floor does not apply
        assert bound_satisfied(4, 0.3, 1.2)

    def test_utilisation(self):
        assert implied_utilisation(4, 3.5) == pytest.approx(0.5)
        assert implied_utilisation(4, 5.0) == 1.0
        assert implied_utilisation(4, 2.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_speedup(1, 0.5)
        with pytest.raises(ValueError):
            worst_case_speedup(4, 1.5)
        with pytest.raises(ValueError):
            required_hit_rate(1)


class TestEvenness:
    def test_perfectly_even(self):
        values = [5, 5, 5, 5]
        assert max_mean_ratio(values) == 1.0
        assert jain_fairness(values) == pytest.approx(1.0)
        assert coefficient_of_variation(values) == 0.0
        assert spread(values) == 0

    def test_concentrated(self):
        values = [100, 0, 0, 0]
        assert max_mean_ratio(values) == 4.0
        assert jain_fairness(values) == pytest.approx(0.25)
        assert spread(values) == 100

    def test_empty_rejected(self):
        for metric in (max_mean_ratio, jain_fairness,
                       coefficient_of_variation, spread):
            with pytest.raises(ValueError):
                metric([])

    def test_zero_total(self):
        assert max_mean_ratio([0, 0]) == 1.0
        assert jain_fairness([0, 0]) == 1.0


class TestFitting:
    def test_exact_cubic_recovered(self):
        coefficients = [2.0, -1.0, 0.5, 3.0]
        xs = [0.1 * i for i in range(10)]
        ys = [polyval(coefficients, x) for x in xs]
        fitted = polyfit(xs, ys, 3)
        assert fitted == pytest.approx(coefficients, abs=1e-6)

    def test_cubic_fit_wrapper(self):
        points = [(x / 10, 1 + 3 * (x / 10)) for x in range(8)]
        coefficients = cubic_fit(points)
        assert polyval(coefficients, 0.5) == pytest.approx(2.5, abs=1e-6)

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError):
            polyfit([1.0, 2.0], [1.0, 2.0], 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            polyfit([1.0], [1.0, 2.0], 1)

    def test_degenerate_points_rejected(self):
        with pytest.raises(ValueError):
            polyfit([1.0, 1.0, 1.0, 1.0], [1.0, 2.0, 3.0, 4.0], 3)


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["a", "bee"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_percent(self):
        assert format_percent(0.7153) == "71.53%"
        assert format_percent(1.0, digits=0) == "100%"

    def test_series(self):
        line = format_series("h", [0.5, 0.75], digits=2)
        assert line == "h: 0.50 0.75"
