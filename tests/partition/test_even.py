"""Tests for CLUE's even range partitioning."""

import pytest

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.net.prefix import Prefix
from repro.partition.base import validate_coverage
from repro.partition.even import (
    OverlapInPartitionInput,
    even_partition,
    partition_ranges,
    range_boundaries,
)
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


def disjoint_table(rng, count=64, length=10):
    values = rng.sample(range(1 << length), count)
    return [(Prefix(v, length), rng.randint(1, 5)) for v in values]


class TestSplit:
    def test_sizes_differ_by_at_most_one(self, rng):
        for count in (1, 2, 3, 4, 7, 8, 16):
            routes = disjoint_table(rng, 61)
            result = even_partition(routes, count)
            sizes = result.sizes()
            assert max(sizes) - min(sizes) <= 1
            assert sum(sizes) == 61

    def test_zero_redundancy(self, rng):
        result = even_partition(disjoint_table(rng, 40), 8)
        assert result.redundancy == 0
        assert result.redundancy_ratio == 0.0

    def test_coverage_exact(self, rng):
        routes = disjoint_table(rng, 50)
        result = even_partition(routes, 8)
        assert validate_coverage(result, routes)

    def test_partitions_are_address_contiguous(self, rng):
        routes = disjoint_table(rng, 64)
        result = even_partition(routes, 4)
        previous_high = -1
        for partition in result.partitions:
            for prefix, _ in partition.routes:
                assert prefix.network > previous_high
                previous_high = prefix.broadcast

    def test_overlap_rejected(self):
        with pytest.raises(OverlapInPartitionInput):
            even_partition([(bits("1"), 1), (bits("10"), 2)], 2)

    def test_bad_count(self):
        with pytest.raises(ValueError):
            even_partition([], 0)

    def test_empty_table(self):
        result = even_partition([], 4)
        assert result.sizes() == [0, 0, 0, 0]

    def test_fewer_routes_than_partitions(self, rng):
        result = even_partition(disjoint_table(rng, 2), 4)
        assert sorted(result.sizes(), reverse=True) == [1, 1, 0, 0]

    def test_compressed_rib_splits_exactly(self, small_trie):
        table = sorted(
            compress(small_trie, CompressionMode.DONT_CARE).items(),
            key=lambda route: route[0].sort_key(),
        )
        result = even_partition(table, 32)
        assert max(result.sizes()) - min(result.sizes()) <= 1
        # imbalance is bounded by the ±1 entry granularity
        assert result.imbalance <= 1 + 32 / len(table)


class TestBoundaries:
    def test_boundaries_start_at_zero(self, rng):
        result = even_partition(disjoint_table(rng, 32), 4)
        boundaries = range_boundaries(result)
        assert boundaries[0] == 0
        assert boundaries == sorted(boundaries)
        assert len(boundaries) == 4

    def test_ranges_cover_space(self, rng):
        result = even_partition(disjoint_table(rng, 32), 4)
        ranges = partition_ranges(result)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == (1 << 32) - 1
        for (low_a, high_a), (low_b, _) in zip(ranges, ranges[1:]):
            assert high_a + 1 == low_b

    def test_each_partition_inside_its_range(self, rng):
        routes = disjoint_table(rng, 48)
        result = even_partition(routes, 6)
        for partition, (low, high) in zip(
            result.partitions, partition_ranges(result)
        ):
            for prefix, _ in partition.routes:
                assert low <= prefix.network and prefix.broadcast <= high


class TestMetrics:
    def test_imbalance_of_perfect_split(self, rng):
        result = even_partition(disjoint_table(rng, 64), 4)
        assert result.imbalance == 1.0

    def test_base_entries(self, rng):
        routes = disjoint_table(rng, 30)
        result = even_partition(routes, 4)
        assert result.base_entries == 30
        assert result.total_entries == 30
