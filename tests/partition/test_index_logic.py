"""Tests for the indexing-logic structures."""

import pytest

from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.net.prefix import Prefix
from repro.partition.even import even_partition
from repro.partition.idbit import idbit_partition
from repro.partition.index_logic import (
    BitIndex,
    PrefixIndex,
    RangeIndex,
    build_index,
    index_is_exact,
)
from repro.partition.subtree import subtree_partition
from repro.trie.trie import BinaryTrie


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestRangeIndex:
    def test_bisect(self):
        index = RangeIndex([0, 100, 200])
        assert index.home_of(0) == 0
        assert index.home_of(99) == 0
        assert index.home_of(100) == 1
        assert index.home_of(5000) == 2

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            RangeIndex([10, 20])

    def test_must_be_sorted(self):
        with pytest.raises(ValueError):
            RangeIndex([0, 30, 20])

    def test_entry_count(self):
        assert RangeIndex([0, 1, 2]).entry_count == 3


class TestPrefixIndex:
    def test_longest_root_wins(self):
        index = PrefixIndex([(Prefix.root(), 0), (bits("1"), 1), (bits("11"), 2)])
        assert index.home_of(0) == 0
        assert index.home_of(0b10 << 30) == 1
        assert index.home_of(0b11 << 30) == 2

    def test_total_via_root_fallback(self):
        index = PrefixIndex([(bits("1"), 3)])
        assert index.home_of(0) == 0  # fallback

    def test_requires_roots(self):
        with pytest.raises(ValueError):
            PrefixIndex([])


class TestBitIndex:
    def test_extraction(self):
        index = BitIndex([0, 2], {0b00: 0, 0b01: 1, 0b10: 2, 0b11: 3})
        address = 0b101 << 29  # bits: pos0=1, pos2=1
        assert index.home_of(address) == 3

    def test_unknown_bucket_defaults(self):
        index = BitIndex([0], {0: 5})
        assert index.home_of(1 << 31) == 0


class TestBuildAndExactness:
    def test_build_dispatch(self, small_trie, small_rib):
        table = sorted(
            compress(small_trie, CompressionMode.DONT_CARE).items(),
            key=lambda route: route[0].sort_key(),
        )
        assert isinstance(build_index(even_partition(table, 8)), RangeIndex)
        assert isinstance(
            build_index(subtree_partition(small_trie, 8)), PrefixIndex
        )
        assert isinstance(build_index(idbit_partition(small_rib, 8)), BitIndex)

    def test_all_schemes_exact(self, rng, small_trie, small_rib):
        addresses = [rng.randrange(1 << 32) for _ in range(400)]
        # add addresses guaranteed to be covered
        addresses += [prefix.network for prefix, _ in small_rib[:200]]

        compressed = sorted(
            compress(small_trie, CompressionMode.DONT_CARE).items(),
            key=lambda route: route[0].sort_key(),
        )
        compressed_trie = BinaryTrie.from_routes(compressed)
        even = even_partition(compressed, 8)
        assert index_is_exact(
            build_index(even), even, addresses, compressed_trie
        )

        sub = subtree_partition(small_trie, 8)
        assert index_is_exact(build_index(sub), sub, addresses, small_trie)

        idb = idbit_partition(small_rib, 8)
        assert index_is_exact(build_index(idb), idb, addresses, small_trie)
