"""Tests for the ID-bit (CoolCAMs / SLPL) partitioner."""

from repro.net.prefix import Prefix
from repro.partition.base import validate_coverage
from repro.partition.idbit import (
    _bucket_ids,
    idbit_partition,
    select_id_bits,
)
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestBucketIds:
    def test_long_prefix_single_bucket(self):
        # bits at positions 0 and 2 of '1011...' -> id 0b11
        assert _bucket_ids(bits("1011"), [0, 2]) == [0b11]

    def test_short_prefix_replicates(self):
        # a /1 prefix leaves position 2 free: two buckets
        ids = _bucket_ids(bits("1"), [0, 2])
        assert sorted(ids) == [0b10, 0b11]

    def test_root_hits_every_bucket(self):
        assert sorted(_bucket_ids(Prefix.root(), [0, 1])) == [0, 1, 2, 3]


class TestSelection:
    def test_selects_requested_count(self, rng):
        routes = random_routes(rng, 60, max_len=16)
        chosen = select_id_bits(routes, 3)
        assert len(chosen) == 3
        assert len(set(chosen)) == 3

    def test_prefers_discriminating_bits(self):
        # All prefixes share bit 0 (=1) but split evenly on bit 1: the
        # greedy pick must prefer position 1.
        routes = [(Prefix((1 << 5) | v, 6), 1) for v in range(32)]
        chosen = select_id_bits(routes, 1)
        assert chosen == [1]


class TestPartition:
    def test_coverage(self, rng):
        routes = random_routes(rng, 60, max_len=16)
        result = idbit_partition(routes, 4)
        assert validate_coverage(result, routes)

    def test_replication_counted_as_redundancy(self):
        routes = [(bits("1"), 1)] + [
            (Prefix((0b10 << 8) | v, 10), 2) for v in range(24)
        ] + [(Prefix((0b11 << 8) | v, 10), 3) for v in range(24)]
        result = idbit_partition(routes, 4)
        assert result.redundancy >= 1  # the /1 must live in several buckets

    def test_home_contains_answer(self, rng):
        routes = random_routes(rng, 80, max_len=16)
        reference = BinaryTrie.from_routes(routes)
        result = idbit_partition(routes, 4)
        tables = [
            BinaryTrie.from_routes(partition.all_routes())
            for partition in result.partitions
        ]
        for _ in range(300):
            address = rng.randrange(1 << 32)
            expected = reference.lookup(address)
            got = tables[result.home_of(address)].lookup(address)
            assert got == expected

    def test_single_partition(self, rng):
        routes = random_routes(rng, 20, max_len=10)
        result = idbit_partition(routes, 1)
        assert result.count == 1

    def test_uneven_split_on_real_shape(self, small_rib):
        """The known CoolCAMs weakness the paper cites: ID bits cannot
        split a real table truly evenly."""
        result = idbit_partition(small_rib, 32)
        assert result.imbalance > 1.02
