"""Tests for CLPL's sub-tree partitioning."""

from repro.net.prefix import Prefix
from repro.partition.base import validate_coverage
from repro.partition.subtree import SubtreePartitionResult, subtree_partition
from repro.trie.trie import BinaryTrie
from tests.conftest import random_routes


def bits(pattern):
    return Prefix.from_bits(pattern)


class TestCarving:
    def test_coverage_exact(self, rng):
        routes = random_routes(rng, 60, max_len=12)
        trie = BinaryTrie.from_routes(routes)
        result = subtree_partition(trie, 4)
        assert validate_coverage(result, routes)

    def test_redundant_entries_are_routed_ancestors(self, rng):
        routes = dict(random_routes(rng, 80, max_len=12))
        trie = BinaryTrie.from_routes(routes.items())
        result = subtree_partition(trie, 8, granularity=8)
        for partition in result.partitions:
            own = {prefix for prefix, _ in partition.routes}
            for prefix, hop in partition.redundant:
                assert routes[prefix] == hop          # a real table entry
                assert prefix not in own              # actually duplicated
                assert any(prefix.contains(p) for p in own)

    def test_covering_prefix_duplicated(self):
        # A /1 route over two big subtrees: carving below it must copy it.
        routes = [(bits("1"), 9)]
        routes += [(Prefix((0b10 << 4) | v, 6), 1) for v in range(16)]
        routes += [(Prefix((0b11 << 4) | v, 6), 2) for v in range(16)]
        trie = BinaryTrie.from_routes(routes)
        result = subtree_partition(trie, 2, threshold=10)
        assert result.redundancy >= 1

    def test_partition_lookup_correct_for_homed_traffic(self, rng):
        """A lookup served by the partition owning its carve root finds the
        same answer as the full table."""
        from repro.partition.index_logic import PrefixIndex

        routes = random_routes(rng, 80, max_len=12)
        trie = BinaryTrie.from_routes(routes)
        result = subtree_partition(trie, 4)
        index = PrefixIndex.from_partition(result)
        tables = [
            BinaryTrie.from_routes(partition.all_routes())
            for partition in result.partitions
        ]
        for _ in range(300):
            address = rng.randrange(1 << 32)
            expected = trie.lookup(address)
            got = tables[index.home_of(address)].lookup(address)
            assert got == expected

    def test_balance_reasonable(self, small_trie):
        result = subtree_partition(small_trie, 8)
        assert result.imbalance < 1.5

    def test_threshold_override(self, rng):
        trie = BinaryTrie.from_routes(random_routes(rng, 60, max_len=12))
        result = subtree_partition(trie, 4, threshold=5)
        assert result.count == 4

    def test_result_type_carries_assignment(self, small_trie):
        result = subtree_partition(small_trie, 4)
        assert isinstance(result, SubtreePartitionResult)
        assert result.bucket_assignment
        partitions = {index for _, index in result.bucket_assignment}
        assert partitions <= set(range(4))

    def test_empty_trie(self):
        result = subtree_partition(BinaryTrie(), 4)
        assert result.total_entries == 0

    def test_redundancy_grows_with_partition_count(self, small_trie):
        """Figure 9's trend: more partitions, more duplicated coverage."""
        few = subtree_partition(small_trie, 4)
        many = subtree_partition(small_trie, 32)
        assert many.redundancy >= few.redundancy
