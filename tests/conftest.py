"""Shared fixtures: deterministic workloads at test-friendly scales."""

from __future__ import annotations

import random

import pytest

from repro.net.prefix import Prefix
from repro.trie.trie import BinaryTrie
from repro.workload.ribgen import RibParameters, generate_rib


def random_routes(rng, count, max_len=6, hops=3):
    """Small random (possibly overlapping) tables for property tests."""
    routes = {}
    for _ in range(count):
        length = rng.randint(0, max_len)
        value = rng.randrange(1 << length) if length else 0
        routes[Prefix(value, length)] = rng.randint(1, hops)
    return list(routes.items())


@pytest.fixture(scope="session")
def small_rib():
    """A ~2k-entry synthetic table (session-cached: generation is pure)."""
    return generate_rib(42, RibParameters(size=2_000))


@pytest.fixture(scope="session")
def medium_rib():
    """A ~8k-entry synthetic table for engine-level tests."""
    return generate_rib(43, RibParameters(size=8_000))


@pytest.fixture(scope="session")
def small_trie(small_rib):
    return BinaryTrie.from_routes(small_rib)


@pytest.fixture()
def rng():
    return random.Random(0xC10E)
