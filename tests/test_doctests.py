"""Run the doctest examples embedded in the public API's docstrings.

Documentation that executes is documentation that stays true; every
module whose docstrings carry ``>>>`` examples is checked here.
"""

import doctest
import importlib

import pytest

MODULES_WITH_EXAMPLES = [
    "repro.net.prefix",
    "repro.trie.trie",
    "repro.compress.onrtc",
    "repro.tcam.device",
    "repro.engine.dred",
    "repro.swlookup.multibit",
    "repro.workload.trafficgen",
    "repro.partition.even",
    "repro.core.system",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_EXAMPLES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} lost its examples"
    assert results.failed == 0
