"""Ablation — update/lookup interference (the paper's premise 1, stressed).

TTF2 and TTF3 matter because TCAM writes occupy the same access port as
searches.  The paper's proof *assumes* update cost is negligible (premise
1: "only one cache-missed element updated within 5000 clock cycles"); this
bench measures what happens when it is not: traffic runs at saturation
while BGP updates stall the owning chip for (slot ops × lookup cycles)
each, at increasing update rates.

CLUE's ~1-op updates barely dent throughput; CLPL's ~15-shift updates plus
RRC-ME cache maintenance carve into it visibly as the rate approaches
storm levels.  Only the *timing* side is modelled here (tables stay
static so both engines serve identical traffic); the correctness side of
live updates is ClueSystem's job and is tested separately.
"""

from repro.analysis.summarize import format_table
from repro.engine.builders import build_clpl_engine, build_clue_engine
from repro.engine.simulator import EngineConfig
from repro.update.pipeline import (
    ClplUpdatePipeline,
    ClueUpdatePipeline,
    default_dred_banks,
)
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateParameters

MIX = UpdateParameters(
    modify_fraction=0.0, new_prefix_fraction=0.5, withdraw_fraction=0.5
)
CHUNK_PACKETS = 2_000
CHUNKS = 10
#: Updates injected per chunk (≈ per 2k packets ≈ per 2k cycles).
UPDATE_RATES = (0, 20, 100, 400)


def _ops_of(sample) -> int:
    """Slot operations implied by one update's data-plane latency."""
    return max(0, round((sample.ttf2_us + sample.ttf3_us) * 1_000 / 24))


def _run(name, builder, pipeline, bench_rib, rate):
    built = builder(bench_rib, EngineConfig(chip_count=4))
    traffic = TrafficGenerator(bench_rib, seed=88)
    updates = UpdateGenerator(bench_rib, seed=89, parameters=MIX)
    engine = built.engine
    for _ in range(CHUNKS):
        engine.run(traffic, CHUNK_PACKETS)
        for _ in range(rate):
            message = updates.next_message()
            sample = pipeline.apply(message)
            chip = engine.home_of(message.prefix.network)
            engine.inject_stall(
                chip, _ops_of(sample) * engine.config.lookup_cycles
            )
    return engine.stats.speedup(engine.config.lookup_cycles)


def test_ablation_update_interference(record, benchmark, bench_rib):
    rows = []
    curves = {"CLUE": [], "CLPL": []}
    for rate in UPDATE_RATES:
        clue_pipeline = ClueUpdatePipeline(
            bench_rib,
            dred_banks=default_dred_banks(4, 512, True),
            tcam_capacity=200_000,
            lazy=True,
        )
        clpl_pipeline = ClplUpdatePipeline(
            bench_rib,
            dred_banks=default_dred_banks(4, 512, False),
            tcam_capacity=200_000,
        )
        clue_speedup = _run(
            "clue", build_clue_engine, clue_pipeline, bench_rib, rate
        )
        clpl_speedup = _run(
            "clpl", build_clpl_engine, clpl_pipeline, bench_rib, rate
        )
        curves["CLUE"].append(clue_speedup)
        curves["CLPL"].append(clpl_speedup)
        rows.append(
            (rate, f"{clue_speedup:.3f}", f"{clpl_speedup:.3f}")
        )
    record(
        "ablation_update_interference",
        format_table(
            ["updates per 2k packets", "CLUE speedup", "CLPL speedup"], rows
        ),
    )

    def one_chunk():
        built = build_clue_engine(bench_rib, EngineConfig(chip_count=4))
        built.engine.run(TrafficGenerator(bench_rib, seed=90), 2_000)

    benchmark.pedantic(one_chunk, rounds=3, iterations=1)

    # Shape: at storm rates CLUE retains clearly more throughput.
    assert curves["CLUE"][-1] > curves["CLPL"][-1]
    # Both schemes degrade monotonically-ish from their no-update baseline.
    assert curves["CLUE"][0] >= curves["CLUE"][-1] - 0.02
    assert curves["CLPL"][0] > curves["CLPL"][-1]
