"""Figure 13 — TTF2+TTF3, the data-plane part of freshness latency.

Paper: CLUE's TTF2+TTF3 is 4.29% of CLPL's on average (3.65% worst case)
under the reading where CLUE's main-table shift and DRed probe proceed in
parallel (they touch independent TCAM regions with no data dependency,
while CLPL's stage 3 must wait for the control plane).  Our honest
entry-diff accounting lands the ratio slightly higher; both readings are
reported.
"""

from statistics import mean

from repro.analysis.summarize import format_table


def test_fig13_ttf23(record, benchmark, ttf_reports):
    clue = ttf_reports["clue"]
    clpl = ttf_reports["clpl"]

    parallel_ratio = clue.ttf23().mean_us / clpl.ttf23().mean_us
    serial_clue = mean(s.ttf2_us + s.ttf3_us for s in clue.samples)
    serial_ratio = serial_clue / clpl.ttf23().mean_us

    rows = [
        ("CLPL (serial)", f"{clpl.ttf23().mean_us:.4f}"),
        ("CLUE (parallel 2||3)", f"{clue.ttf23().mean_us:.4f}"),
        ("CLUE (serial 2+3)", f"{serial_clue:.4f}"),
    ]
    text = format_table(["scheme", "mean us"], rows)
    text += (
        f"\nCLUE/CLPL ratio: parallel reading {parallel_ratio:.2%} "
        f"(paper: 4.29%), serial reading {serial_ratio:.2%}"
    )
    record("fig13_ttf23", text)

    # Benchmark: the whole CLUE data-plane update (TCAM diff + DRed probe).
    from repro.update.pipeline import ClueUpdatePipeline, default_dred_banks
    from repro.workload.ribgen import RibParameters, generate_rib
    from repro.workload.updategen import UpdateGenerator

    routes = generate_rib(51, RibParameters(size=2_000))
    # Generous TCAM headroom: the benchmark applies tens of thousands of
    # updates and the table must never hit the region-full wall.
    pipeline = ClueUpdatePipeline(
        routes,
        dred_banks=default_dred_banks(4, 512, True),
        tcam_capacity=200_000,
    )
    stream = UpdateGenerator(routes, seed=52)

    def one_update():
        pipeline.apply(stream.next_message())

    benchmark(one_update)

    # Shape: CLUE's interrupting latency is a small fraction of CLPL's.
    assert parallel_ratio < 0.25
    assert serial_ratio < 0.35
