"""Serving-plane throughput — batched lookups over loopback TCP.

Measures what the ROADMAP's north star actually asks of the system: a
network front end sustaining lookup traffic.  A :class:`ServerThread`
runs the full serving plane (framing, shard routing, the turbo engine)
in-process; the load generator drives one pipelined connection with
pre-encoded batches and reports sustained lookups/sec plus p50/p99
request latency.  Numbers are conservative: client and server share one
interpreter, so the GIL taxes the server with the client's decode work.

Runs two ways:

* ``python benchmarks/bench_serve.py`` — the full ≥100k lookups/sec gate
  that produces the committed ``BENCH_serve.json``;
* ``python benchmarks/bench_serve.py --quick`` — CI's serve-smoke: a
  small run checked against the ``floor_lookups_per_sec`` stored in the
  committed JSON (a deliberate 10x-below-measured bound that trips on
  real regressions, not runner jitter).

Also collected by ``pytest benchmarks/`` as a quick-mode test.
"""

import argparse
import gc
import json
import sys
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    # Standalone invocation: make src/ importable without installation.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.summarize import format_table
from repro.core.config import SystemConfig
from repro.engine.simulator import EngineConfig
from repro.serve import ServeConfig, ServerThread, ShardSet
from repro.serve.loadgen import generate_batches, run_load
from repro.workload.ribgen import RibParameters, generate_rib

RESULTS_DIR = Path(__file__).resolve().parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_serve.json"
QUICK_RESULT_FILE = RESULTS_DIR / "BENCH_serve_quick.json"

#: Same table every engine-level bench uses (rrc01 stand-in).
RIB_SEED = 101
RIB_SIZE = 8_000
TRAFFIC_SEED = 61

BATCH_SIZE = 1_024
WINDOW = 4
FULL_BATCHES = 200
QUICK_BATCHES = 40
#: The acceptance gate for the full run.
REQUIRED_LOOKUPS_PER_SEC = 100_000


def system_config():
    """Fast-backend CLUE settings (the paper's 4-chip configuration)."""
    return SystemConfig(
        engine=EngineConfig(
            chip_count=4,
            lookup_cycles=4,
            queue_capacity=256,
            dred_capacity=1_024,
            lookup_backend="fast",
        )
    )


def run_configuration(rib, batches, shard_count):
    """Serve the RIB with ``shard_count`` workers and measure one load."""
    shards = ShardSet.build(rib, shard_count=shard_count, config=system_config())
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        with ServerThread(shards, ServeConfig(inflight_window=WINDOW)) as thread:
            report = run_load(
                "127.0.0.1", thread.server.port, batches, window=WINDOW
            )
            thread.stop()
    finally:
        if gc_was_enabled:
            gc.enable()
    if report.busy:
        raise AssertionError(
            f"{report.busy} BUSY responses under a window-matched load"
        )
    expected = sum(len(batch) for batch in batches)
    if report.lookups != expected:
        raise AssertionError(
            f"served {report.lookups} lookups, sent {expected}"
        )
    return {
        "shards": shard_count,
        "requests": report.requests,
        "lookups": report.lookups,
        "duration_s": round(report.duration_s, 4),
        "lookups_per_sec": round(report.lookups_per_sec, 1),
        "p50_us": round(report.p50_us, 1),
        "p99_us": round(report.p99_us, 1),
    }


def run_bench(batch_count, rib=None):
    """Measure the single-shard primary and a 2-shard secondary."""
    if rib is None:
        rib = generate_rib(RIB_SEED, RibParameters(size=RIB_SIZE))
    rib = list(rib)
    batches = generate_batches(rib, batch_count, BATCH_SIZE, seed=TRAFFIC_SEED)
    single = run_configuration(rib, batches, shard_count=1)
    sharded = run_configuration(rib, batches, shard_count=2)
    return {
        "workload": {
            "rib_seed": RIB_SEED,
            "rib_size": len(rib),
            "traffic_seed": TRAFFIC_SEED,
            "batches": batch_count,
            "batch_size": BATCH_SIZE,
            "window": WINDOW,
            "backend": "fast",
        },
        # The single-shard numbers are the headline: the gate, the CI
        # floor and the README all read these keys.
        "lookups_per_sec": single["lookups_per_sec"],
        "p50_us": single["p50_us"],
        "p99_us": single["p99_us"],
        "configurations": {"single": single, "sharded2": sharded},
    }


def render(payload):
    rows = [
        (
            name,
            entry["shards"],
            f"{entry['lookups_per_sec']:,.0f}",
            f"{entry['p50_us']:,.0f}",
            f"{entry['p99_us']:,.0f}",
        )
        for name, entry in payload["configurations"].items()
    ]
    return format_table(
        ["configuration", "shards", "lookups/sec", "p50 us", "p99 us"], rows
    )


def stored_floor():
    if not RESULT_FILE.exists():
        return None
    return json.loads(RESULT_FILE.read_text()).get("floor_lookups_per_sec")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small run, stored-floor check instead of 100k gate",
    )
    args = parser.parse_args(argv)

    batch_count = QUICK_BATCHES if args.quick else FULL_BATCHES
    try:
        payload = run_bench(batch_count)
    except AssertionError as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 1
    print(render(payload))

    RESULTS_DIR.mkdir(exist_ok=True)
    if args.quick:
        floor = stored_floor()
        payload["floor_lookups_per_sec"] = floor
        QUICK_RESULT_FILE.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="ascii"
        )
        rate = payload["lookups_per_sec"]
        if floor is not None and rate < floor:
            print(
                f"serving plane regressed: {rate:,.0f} lookups/sec below "
                f"the stored floor {floor:,.0f}",
                file=sys.stderr,
            )
            return 1
        return 0

    rate = payload["lookups_per_sec"]
    if rate < REQUIRED_LOOKUPS_PER_SEC:
        print(
            f"serving plane only {rate:,.0f} lookups/sec "
            f"(gate: {REQUIRED_LOOKUPS_PER_SEC:,.0f})",
            file=sys.stderr,
        )
        return 1
    # The CI floor: deliberately far below the measured rate so it only
    # trips on order-of-magnitude regressions, not runner variance.
    previous = stored_floor()
    payload["floor_lookups_per_sec"] = (
        previous if previous is not None else round(rate / 10.0)
    )
    RESULT_FILE.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="ascii"
    )
    print(f"wrote {RESULT_FILE}")
    return 0


def test_serve_throughput(record, bench_rib):
    """Pytest entry point: quick-mode load over loopback on the bench RIB."""
    payload = run_bench(QUICK_BATCHES, rib=bench_rib)
    record("serve_throughput", render(payload))
    assert payload["configurations"]["single"]["lookups"] == (
        QUICK_BATCHES * BATCH_SIZE
    )
    assert payload["lookups_per_sec"] > 0


if __name__ == "__main__":
    sys.exit(main())
