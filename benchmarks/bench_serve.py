"""Serving-plane throughput — batched lookups over loopback TCP.

Measures what the ROADMAP's north star actually asks of the system: a
network front end sustaining lookup traffic.  Three topologies:

* ``single`` / ``sharded2`` — a :class:`ServerThread` runs the full
  serving plane in-process.  Numbers are conservative: client and
  server share one interpreter, so the GIL taxes the server with the
  client's decode work — which is exactly why ``sharded2`` barely beats
  ``single``.
* ``multiproc2`` / ``multiproc4`` — ``--workers processes``: one worker
  process per shard, the load generator driving each worker directly on
  its advertised port (the topology ``serve.json`` publishes).  This is
  the configuration that can actually scale with cores.

The multi-process scaling gates (≥1.8x at 2 workers, ≥3x at 4 over
``single``) are enforced **only when the machine has enough cores** to
express the parallelism — ``workers + 1`` (the extra one for the
generator + parent).  On smaller boxes the ratios are still measured
and recorded, but a 1-core container cannot fail a gate it physically
cannot pass; the per-topology absolute floors still apply everywhere.

Runs two ways:

* ``python benchmarks/bench_serve.py`` — the full gate run that
  produces the committed ``BENCH_serve.json``;
* ``python benchmarks/bench_serve.py --quick`` — CI's serve-smoke: a
  small run checked against the stored per-topology floors (each a
  deliberate 10x-below-measured bound that trips on real regressions,
  not runner jitter) plus a derated scaling check.

Also collected by ``pytest benchmarks/`` as a quick-mode test.
"""

import argparse
import gc
import json
import os
import sys
import tempfile
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    # Standalone invocation: make src/ importable without installation.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.summarize import format_table
from repro.core.config import SystemConfig
from repro.engine.simulator import EngineConfig
from repro.serve import (
    ProcessFront,
    ProcessSupervisor,
    ServeConfig,
    ServerThread,
    ShardSet,
    WorkerSpec,
    plan_shards,
)
from repro.serve.loadgen import generate_batches, run_load, run_load_processes
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.traces import save_table

RESULTS_DIR = Path(__file__).resolve().parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_serve.json"
QUICK_RESULT_FILE = RESULTS_DIR / "BENCH_serve_quick.json"

#: Same table every engine-level bench uses (rrc01 stand-in).
RIB_SEED = 101
RIB_SIZE = 8_000
TRAFFIC_SEED = 61

BATCH_SIZE = 1_024
WINDOW = 4
FULL_BATCHES = 200
QUICK_BATCHES = 40
#: The absolute acceptance gate for the full run (single topology).
REQUIRED_LOOKUPS_PER_SEC = 100_000
#: Parallel-speedup gates over ``single``, enforced when cores allow.
SCALING_FLOORS = {"multiproc2": 1.8, "multiproc4": 3.0}
#: Quick mode derates the scaling gates (smaller runs, noisier ratios).
QUICK_SCALING_DERATE = 2.0 / 3.0


def cores_for(name):
    """Cores needed to honestly measure a topology's scaling gate."""
    workers = int(name.removeprefix("multiproc"))
    return workers + 1  # + the generator/parent core


def system_config():
    """Fast-backend CLUE settings (the paper's 4-chip configuration)."""
    return SystemConfig(
        engine=EngineConfig(
            chip_count=4,
            lookup_cycles=4,
            queue_capacity=256,
            dred_capacity=1_024,
            lookup_backend="fast",
        )
    )


def run_configuration(rib, batches, shard_count):
    """Serve the RIB with ``shard_count`` in-process workers, measure."""
    shards = ShardSet.build(rib, shard_count=shard_count, config=system_config())
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        with ServerThread(shards, ServeConfig(inflight_window=WINDOW)) as thread:
            report = run_load(
                "127.0.0.1", thread.server.port, batches, window=WINDOW
            )
            thread.stop()
    finally:
        if gc_was_enabled:
            gc.enable()
    return _check_report(report, batches, shard_count, "threads")


def run_configuration_processes(rib, table_path, batches, worker_count):
    """Serve with ``worker_count`` worker *processes*, drive them all.

    The generator learns each worker's endpoint from the supervisor and
    drives every worker in parallel on its own port — the same
    direct-to-shard routing the advertised ``serve.json`` topology
    offers sharding-aware clients.
    """
    plan = plan_shards(
        rib, worker_count, mode=SystemConfig().compression_mode
    )
    spec = WorkerSpec(
        shard_count=worker_count,
        table=str(table_path),
        chips=4,
        dred=1_024,
        queue=256,
        backend="fast",
        window=WINDOW * 4,
    )
    supervisor = ProcessSupervisor(spec, plan.router.boundaries)
    front = ProcessFront(supervisor, ServeConfig(inflight_window=WINDOW))
    with ServerThread(server=front) as thread:
        report = run_load_processes(
            supervisor.endpoints(),
            supervisor.boundaries,
            batches,
            window=WINDOW,
        )
        thread.stop()
    return _check_report(report, batches, worker_count, "processes")


def _check_report(report, batches, shard_count, workers):
    if report.busy:
        raise AssertionError(
            f"{report.busy} BUSY responses under a window-matched load"
        )
    expected = sum(len(batch) for batch in batches)
    if report.lookups != expected:
        raise AssertionError(
            f"served {report.lookups} lookups, sent {expected}"
        )
    return {
        "shards": shard_count,
        "workers": workers,
        "requests": report.requests,
        "lookups": report.lookups,
        "duration_s": round(report.duration_s, 4),
        "lookups_per_sec": round(report.lookups_per_sec, 1),
        "p50_us": round(report.p50_us, 1),
        "p99_us": round(report.p99_us, 1),
    }


def run_bench(batch_count, rib=None, processes=()):
    """Measure the in-process topologies plus ``processes`` worker counts."""
    if rib is None:
        rib = generate_rib(RIB_SEED, RibParameters(size=RIB_SIZE))
    rib = list(rib)
    batches = generate_batches(rib, batch_count, BATCH_SIZE, seed=TRAFFIC_SEED)
    configurations = {
        "single": run_configuration(rib, batches, shard_count=1),
        "sharded2": run_configuration(rib, batches, shard_count=2),
    }
    if processes:
        with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
            table_path = Path(tmp) / "table.txt"
            save_table(rib, table_path)
            for worker_count in processes:
                configurations[f"multiproc{worker_count}"] = (
                    run_configuration_processes(
                        rib, table_path, batches, worker_count
                    )
                )
    single_rate = configurations["single"]["lookups_per_sec"]
    scaling = {
        name: round(entry["lookups_per_sec"] / single_rate, 3)
        for name, entry in configurations.items()
        if name != "single" and single_rate
    }
    return {
        "workload": {
            "rib_seed": RIB_SEED,
            "rib_size": len(rib),
            "traffic_seed": TRAFFIC_SEED,
            "batches": batch_count,
            "batch_size": BATCH_SIZE,
            "window": WINDOW,
            "backend": "fast",
        },
        # The single-shard numbers are the headline: the gate, the CI
        # floor and the README all read these keys.
        "lookups_per_sec": single_rate,
        "p50_us": configurations["single"]["p50_us"],
        "p99_us": configurations["single"]["p99_us"],
        "cores": os.cpu_count(),
        "configurations": configurations,
        #: Each topology's speedup over ``single`` on the same workload.
        "scaling": scaling,
        "scaling_floors": SCALING_FLOORS,
    }


def render(payload):
    rows = [
        (
            name,
            entry["shards"],
            entry.get("workers", "threads"),
            f"{entry['lookups_per_sec']:,.0f}",
            f"{payload['scaling'].get(name, 1.0):.2f}x",
            f"{entry['p50_us']:,.0f}",
            f"{entry['p99_us']:,.0f}",
        )
        for name, entry in payload["configurations"].items()
    ]
    return format_table(
        [
            "configuration",
            "shards",
            "workers",
            "lookups/sec",
            "vs single",
            "p50 us",
            "p99 us",
        ],
        rows,
    )


def stored_floors():
    """Per-topology floors from the committed result (legacy-tolerant)."""
    if not RESULT_FILE.exists():
        return {}
    stored = json.loads(RESULT_FILE.read_text())
    floors = dict(stored.get("floors") or {})
    if "single" not in floors and stored.get("floor_lookups_per_sec"):
        floors["single"] = stored["floor_lookups_per_sec"]
    return floors


def check_scaling(payload, derate=1.0):
    """Scaling-gate verdicts: (name, ratio, floor, enforced, ok)."""
    cores = payload["cores"] or 1
    verdicts = []
    for name, floor in SCALING_FLOORS.items():
        if name not in payload["scaling"]:
            continue
        ratio = payload["scaling"][name]
        needed = floor * derate
        enforced = cores >= cores_for(name)
        verdicts.append((name, ratio, needed, enforced, ratio >= needed))
    return verdicts


def report_scaling(verdicts):
    failed = False
    for name, ratio, floor, enforced, ok in verdicts:
        if not enforced:
            print(
                f"scaling gate {name} >= {floor:.2f}x skipped: "
                f"{os.cpu_count()} core(s) cannot express the parallelism "
                f"(measured {ratio:.2f}x, recorded)"
            )
        elif not ok:
            failed = True
            print(
                f"parallel speedup regressed: {name} at {ratio:.2f}x "
                f"over single (gate: {floor:.2f}x)",
                file=sys.stderr,
            )
    return failed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small run, stored-floor check instead of 100k gate",
    )
    args = parser.parse_args(argv)

    batch_count = QUICK_BATCHES if args.quick else FULL_BATCHES
    processes = (2,) if args.quick else (2, 4)
    try:
        payload = run_bench(batch_count, processes=processes)
    except AssertionError as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 1
    print(render(payload))

    RESULTS_DIR.mkdir(exist_ok=True)
    if args.quick:
        floors = stored_floors()
        payload["floors"] = floors
        QUICK_RESULT_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        failed = False
        for name, entry in payload["configurations"].items():
            floor = floors.get(name)
            if floor is not None and entry["lookups_per_sec"] < floor:
                failed = True
                print(
                    f"serving plane regressed: {name} at "
                    f"{entry['lookups_per_sec']:,.0f} lookups/sec below "
                    f"the stored floor {floor:,.0f}",
                    file=sys.stderr,
                )
        failed |= report_scaling(
            check_scaling(payload, derate=QUICK_SCALING_DERATE)
        )
        return 1 if failed else 0

    rate = payload["lookups_per_sec"]
    failed = False
    if rate < REQUIRED_LOOKUPS_PER_SEC:
        failed = True
        print(
            f"serving plane only {rate:,.0f} lookups/sec "
            f"(gate: {REQUIRED_LOOKUPS_PER_SEC:,.0f})",
            file=sys.stderr,
        )
    failed |= report_scaling(check_scaling(payload))
    if failed:
        return 1
    # The CI floors: deliberately far below the measured rates so they
    # only trip on order-of-magnitude regressions, not runner variance.
    previous = stored_floors()
    payload["floors"] = {
        name: previous.get(
            name, round(entry["lookups_per_sec"] / 10.0)
        )
        for name, entry in payload["configurations"].items()
    }
    # Legacy scalar kept so older readers of the committed JSON keep
    # working; it mirrors floors["single"].
    payload["floor_lookups_per_sec"] = payload["floors"]["single"]
    RESULT_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="ascii",
    )
    print(f"wrote {RESULT_FILE}")
    return 0


def test_serve_throughput(record, bench_rib):
    """Pytest entry point: quick-mode load over loopback on the bench RIB."""
    payload = run_bench(QUICK_BATCHES, rib=bench_rib)
    record("serve_throughput", render(payload))
    assert payload["configurations"]["single"]["lookups"] == (
        QUICK_BATCHES * BATCH_SIZE
    )
    assert payload["lookups_per_sec"] > 0


if __name__ == "__main__":
    sys.exit(main())
