"""Ablation — the three TCAM layout/update strategies head to head.

Extends Figure 7's comparison with measured shift distributions: naive
fully-ordered (O(n)), Shah–Gupta PLO (≤32) and CLUE's unordered layout
(≤1), all over the same structural update stream.
"""

from statistics import mean

from repro.analysis.summarize import format_table
from repro.compress.labels import CompressionMode
from repro.compress.onrtc import OnrtcTable
from repro.tcam.device import Tcam
from repro.tcam.update_clue import ClueUpdater
from repro.tcam.update_naive import NaiveUpdater
from repro.tcam.update_plo import PloUpdater
from repro.workload.updategen import UpdateGenerator, UpdateKind, UpdateParameters

MIX = UpdateParameters(
    modify_fraction=0.0, new_prefix_fraction=0.5, withdraw_fraction=0.5
)
UPDATES = 600
TABLE_SLICE = 3_000  # naive is O(n) per update; keep its n honest but sane


def _drive_raw(updater_cls, routes, messages):
    chip = Tcam(len(routes) * 3, priority_encoder=True)
    updater = updater_cls(chip.region(0, len(routes) * 3))
    updater.load(routes)
    per_update = []
    for message in messages:
        before = chip.counters.moves
        updater.apply(message.prefix, message.next_hop)
        per_update.append(chip.counters.moves - before)
    return per_update


def _drive_clue(routes, messages):
    table = OnrtcTable(routes, mode=CompressionMode.DONT_CARE)
    chip = Tcam(len(routes) * 3, priority_encoder=False)
    updater = ClueUpdater(chip.region(0, len(routes) * 3))
    updater.load(table.routes())
    per_update = []
    for message in messages:
        if message.kind is UpdateKind.ANNOUNCE:
            diff = table.announce(message.prefix, message.next_hop)
        else:
            diff = table.withdraw(message.prefix)
        before = chip.counters.moves
        for prefix, _hop in diff.removes:
            updater.delete(prefix)
        for prefix, hop in diff.adds:
            updater.insert(prefix, hop)
        per_update.append(chip.counters.moves - before)
    return per_update


def test_ablation_tcam_layouts(record, benchmark, bench_rib):
    routes = bench_rib[:TABLE_SLICE]
    messages = UpdateGenerator(routes, seed=97, parameters=MIX).take(UPDATES)

    shifts = {
        "naive ordered": _drive_raw(NaiveUpdater, routes, messages),
        "PLO (Shah-Gupta)": _drive_raw(PloUpdater, routes, messages),
        "CLUE unordered": _drive_clue(routes, messages),
    }
    rows = [
        (
            name,
            f"{mean(series):.2f}",
            max(series),
            f"{mean(series) * 24 / 1000:.4f}",
        )
        for name, series in shifts.items()
    ]
    record(
        "ablation_tcam_layouts",
        format_table(
            ["layout", "mean shifts", "max shifts", "mean us @24ns"], rows
        ),
    )

    # Benchmark: PLO updates (the interesting middle ground).
    chip = Tcam(TABLE_SLICE * 3, priority_encoder=True)
    updater = PloUpdater(chip.region(0, TABLE_SLICE * 3))
    updater.load(routes)
    stream = UpdateGenerator(routes, seed=98, parameters=MIX)

    def one_update():
        message = stream.next_message()
        updater.apply(message.prefix, message.next_hop)

    benchmark(one_update)

    naive = mean(shifts["naive ordered"])
    plo = mean(shifts["PLO (Shah-Gupta)"])
    clue = mean(shifts["CLUE unordered"])
    assert naive > plo > clue
    assert max(shifts["PLO (Shah-Gupta)"]) <= 32
    # Per entry change CLUE moves at most once; diffs average ~1 entry.
    assert clue < 3.0
