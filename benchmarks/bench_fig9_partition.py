"""Figure 9 — partition comparison: SLPL (ID-bit) vs CLPL (sub-tree) vs
CLUE (even ranges over the compressed table).

Paper: SLPL cannot split evenly; CLPL splits evenly at the cost of
redundancy that grows with the partition count; CLUE splits exactly evenly
with zero redundancy and fewer prefixes per partition than both.
"""

import pytest

from repro.analysis.summarize import format_table
from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.partition.even import even_partition
from repro.partition.idbit import idbit_partition
from repro.partition.subtree import subtree_partition
from repro.trie.trie import BinaryTrie

PARTITION_COUNTS = (4, 8, 16, 32)


@pytest.fixture(scope="module")
def inputs(bench_rib):
    trie = BinaryTrie.from_routes(bench_rib)
    compressed = sorted(
        compress(trie, CompressionMode.DONT_CARE).items(),
        key=lambda route: route[0].sort_key(),
    )
    return bench_rib, trie, compressed


def test_fig9_partition_comparison(record, benchmark, inputs):
    routes, trie, compressed = inputs
    rows = []
    results = {}
    for count in PARTITION_COUNTS:
        slpl = idbit_partition(routes, count)
        clpl = subtree_partition(trie, count)
        clue = even_partition(compressed, count)
        results[count] = (slpl, clpl, clue)
        for name, result in (("SLPL", slpl), ("CLPL", clpl), ("CLUE", clue)):
            rows.append(
                (
                    count,
                    name,
                    result.max_size,
                    result.min_size,
                    f"{result.imbalance:.3f}",
                    result.redundancy,
                )
            )
    record(
        "fig9_partition",
        format_table(
            ["partitions", "scheme", "max", "min", "max/mean", "redundant"],
            rows,
        ),
    )

    # Benchmark: CLUE's partition step (the paper stresses its simplicity).
    benchmark(even_partition, compressed, 32)

    for count in PARTITION_COUNTS:
        slpl, clpl, clue = results[count]
        # CLUE: perfectly even, zero redundancy, smallest partitions.
        assert clue.redundancy == 0
        assert clue.max_size - clue.min_size <= 1
        assert clue.max_size < slpl.max_size
        assert clue.max_size < clpl.max_size
        # SLPL: visibly uneven.
        assert slpl.imbalance > clue.imbalance
    # CLPL redundancy grows with the partition count.
    assert results[32][1].redundancy >= results[4][1].redundancy
