"""Ablation — compression strategies on the same table.

Quantifies the design space around ONRTC: classical leaf-pushing (total
overlap elimination, but expansion), strict-mode ONRTC (misses preserved
exactly), don't-care ONRTC (the paper's operating point) and ORTC (optimal
but overlapping, so it forfeits every TCAM benefit CLUE builds on).
"""

from repro.analysis.summarize import format_percent, format_table
from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.compress.ortc import compress_ortc
from repro.trie.leafpush import leaf_push
from repro.trie.trie import BinaryTrie


def test_ablation_compression_modes(record, benchmark, bench_rib):
    trie = BinaryTrie.from_routes(bench_rib)
    original = len(bench_rib)

    sizes = {
        "original": original,
        "leaf-push (disjoint)": len(leaf_push(trie)),
        "ONRTC strict (disjoint)": len(
            compress(trie, CompressionMode.STRICT)
        ),
        "ONRTC dont-care (disjoint)": len(
            compress(trie, CompressionMode.DONT_CARE)
        ),
        "ORTC (overlapping)": len(compress_ortc(trie)),
    }
    rows = [
        (name, size, format_percent(size / original))
        for name, size in sizes.items()
    ]
    record(
        "ablation_compression",
        format_table(["strategy", "entries", "vs original"], rows),
    )

    benchmark(compress, trie, CompressionMode.STRICT)

    # Orderings that define the design space:
    assert sizes["ONRTC strict (disjoint)"] <= sizes["leaf-push (disjoint)"]
    assert (
        sizes["ONRTC dont-care (disjoint)"]
        <= sizes["ONRTC strict (disjoint)"]
    )
    assert sizes["ONRTC dont-care (disjoint)"] < original
    # ORTC may exploit overlap to go below any disjoint representation.
    assert sizes["ORTC (overlapping)"] <= sizes["ONRTC strict (disjoint)"] + 1
