"""Table II — workload on the 32 even partitions and the adversarial
partition → chip mapping.

Paper: real traffic over rrc01's 32 even partitions is extremely skewed
(one partition alone carries 21.92%); sorting partitions by load and
giving the hottest eight to each chip in turn yields per-chip shares of
77.88% / 17.43% / 4.54% / 0.16% — the worst-case mapping Figure 15 then
balances.
"""

from repro.analysis.summarize import format_percent, format_table
from repro.engine.builders import (
    build_clue_engine,
    map_partitions_to_chips,
    measure_partition_load,
)
from repro.engine.simulator import EngineConfig
from repro.partition.even import partition_ranges
from repro.net.prefix import format_address
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters

PACKETS = 60_000

#: CAIDA-like concentration: reproduces the paper's 77.88%-on-one-chip
#: skew (calibrated; the synthetic default is milder).
TABLE2_TRAFFIC = TrafficParameters(zipf_exponent=1.4)


def test_table2_partition_workload(record, benchmark, bench_rib):
    built = build_clue_engine(bench_rib, EngineConfig(chip_count=4))
    traffic = TrafficGenerator(bench_rib, seed=61, parameters=TABLE2_TRAFFIC)
    sample = traffic.take(PACKETS)
    loads = measure_partition_load(
        built.index, sample, built.partition_result.count
    )
    total = sum(loads)
    ranges = partition_ranges(built.partition_result)
    mapping = map_partitions_to_chips(len(loads), 4, loads)

    order = sorted(range(len(loads)), key=lambda p: loads[p], reverse=True)
    rows = []
    chip_share = [0.0] * 4
    for partition in order:
        share = loads[partition] / total
        chip = mapping[partition]
        chip_share[chip] += share
        low, high = ranges[partition]
        rows.append(
            (
                chip + 1,
                partition,
                format_address(low),
                format_address(high),
                format_percent(share),
            )
        )
    text = format_table(
        ["chip", "bucket", "range low", "range high", "% of traffic"],
        rows[:12] + [("...", "", "", "", "")],
    )
    text += "\nper-chip share under the adversarial mapping: " + ", ".join(
        format_percent(share) for share in chip_share
    )
    record("table2_workload", text)

    # Benchmark: classifying the whole sample through the indexing logic.
    benchmark(
        measure_partition_load,
        built.index,
        sample[:10_000],
        built.partition_result.count,
    )

    # Shape: extreme skew — the hottest chip dominates, the coldest is
    # near idle (paper: 77.88% vs 0.16%).
    assert chip_share[0] > 0.60
    assert chip_share[3] < 0.06
    assert max(loads) / total > 0.05
