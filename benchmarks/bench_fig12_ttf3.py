"""Figure 12 — TTF3 (DRed update time): direct probe vs RRC-ME bookkeeping.

Paper: TTF3-CLUE is flat at 0.024 µs; TTF3-CLPL ranges 0.1802–0.2878 µs
(mean 0.1993 µs) because every table change makes the control plane walk
the SRAM trie to find invalidated cached expansions — 8.3× CLUE on
average.
"""

from repro.analysis.summarize import format_series, format_table


def _series(report, selector, windows=12):
    span = report.samples[-1].timestamp if report.samples else 1.0
    return [
        window.mean_us
        for window in report.windowed(selector, span / windows + 1e-9)
    ]


def test_fig12_ttf3(record, benchmark, ttf_reports, bench_rib):
    clue = ttf_reports["clue"]
    clpl = ttf_reports["clpl"]

    ratio = clpl.ttf3().mean_us / clue.ttf3().mean_us
    rows = [
        (
            name,
            f"{summary.min_us:.4f}",
            f"{summary.mean_us:.4f}",
            f"{summary.max_us:.4f}",
        )
        for name, summary in (
            ("CLPL (RRC-ME)", clpl.ttf3()),
            ("CLUE (direct)", clue.ttf3()),
        )
    ]
    text = format_table(["scheme", "min us", "mean us", "max us"], rows)
    text += f"\nTTF3 ratio CLPL/CLUE: {ratio:.2f}x (paper: 8.3x)"
    text += "\n" + format_series(
        "CLPL windowed mean (us)", _series(clpl, lambda s: s.ttf3_us)
    )
    record("fig12_ttf3", text)

    # Benchmark: the CLPL DRed maintenance kernel (SRAM walk + invalidate).
    from repro.engine.dred import DredCache
    from repro.update.dred_update import ClplDredUpdater
    from repro.workload.updategen import UpdateGenerator

    pipeline = ttf_reports["clpl_pipeline"]
    caches = [DredCache(1024, index, False) for index in range(4)]
    for prefix, hop in bench_rib[:2_000]:
        for cache in caches:
            cache.insert(prefix, hop, owner=0)
    updater = ClplDredUpdater(pipeline.trie_stage.trie, caches)
    stream = UpdateGenerator(bench_rib, seed=41)

    def one_update():
        updater.apply(stream.next_message())

    benchmark(one_update)

    # Shape: CLUE several times cheaper, CLPL in (broadly) the paper band.
    assert ratio > 3.0
    assert clue.ttf3().mean_us < 0.08
