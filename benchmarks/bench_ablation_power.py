"""Ablation — search energy per lookup across schemes.

TCAM power scales with the slots activated per search (the CoolCAMs
argument the partitioning literature is built on).  The cycle simulator
records how many MAIN and DRed searches each chip served; combining those
with each chip's table size and the DRed capacity gives energy per lookup:

* full duplication activates the whole table on every search;
* CLUE activates one compressed partition-set (≈71%/4 of the table) or one
  DRed region;
* CLPL activates an uncompressed chip table, plus its RRC-ME control-plane
  traffic is reported for context.
"""

from repro.analysis.summarize import format_table
from repro.engine.builders import (
    build_clpl_engine,
    build_clue_engine,
    build_round_robin_engine,
)
from repro.engine.simulator import EngineConfig
from repro.tcam.power import PowerModel
from repro.workload.trafficgen import TrafficGenerator

PACKETS = 25_000


def _energy_per_lookup(built, stats, dred_capacity, model):
    activated = 0
    for chip_index, table_slots in enumerate(built.tcam_entries_per_chip):
        activated += stats.per_chip_main[chip_index] * table_slots
        activated += stats.per_chip_dred[chip_index] * dred_capacity
    lookups = sum(stats.per_chip_lookups)
    return model.search_energy_pj(activated) / max(1, lookups)


def test_ablation_power(record, benchmark, bench_rib):
    config = EngineConfig(chip_count=4, dred_capacity=1024)
    model = PowerModel()

    builds = {
        "CLUE": build_clue_engine(bench_rib, config),
        "CLPL": build_clpl_engine(bench_rib, config),
        "duplicate+RR": build_round_robin_engine(bench_rib, config),
    }
    rows = []
    energies = {}
    for name, built in builds.items():
        stats = built.engine.run(TrafficGenerator(bench_rib, seed=85), PACKETS)
        energy = _energy_per_lookup(built, stats, config.dred_capacity, model)
        energies[name] = energy
        rows.append(
            (
                name,
                built.total_tcam_entries,
                f"{energy:.0f}",
                f"{stats.speedup(4):.2f}",
            )
        )
    baseline = energies["duplicate+RR"]
    text = format_table(
        ["scheme", "TCAM entries", "energy/lookup (pJ)", "speedup"], rows
    )
    text += "\nrelative to full duplication: " + ", ".join(
        f"{name} {energy / baseline:.1%}" for name, energy in energies.items()
    )
    record("ablation_power", text)

    # Benchmark: the energy aggregation itself is trivial; measure one
    # engine run at this configuration instead.
    def one_run():
        built = build_clue_engine(bench_rib, config)
        built.engine.run(TrafficGenerator(bench_rib, seed=86), 4_000)

    benchmark.pedantic(one_run, rounds=3, iterations=1)

    # Shape: duplication burns the most; CLUE burns the least (compressed
    # table, smallest activated regions).
    assert energies["CLUE"] < energies["CLPL"] < energies["duplicate+RR"]
    assert energies["CLUE"] / baseline < 0.40
