"""Figure 10 — TTF1 (trie update time): CLUE (ONRTC) vs CLPL (plain trie).

Paper: TTF1-CLUE ranges 0.1924–0.3574 µs, mean 0.2210 µs — 'a little bit
longer' than the uncompressed ground truth, and harmless because trie
update never interrupts lookups.
"""

from repro.analysis.summarize import format_series, format_table
from repro.update.trie_update import OnrtcTrieUpdater


def _series(report, selector, windows=12):
    span = report.samples[-1].timestamp if report.samples else 1.0
    return [
        window.mean_us
        for window in report.windowed(selector, span / windows + 1e-9)
    ]


def test_fig10_ttf1(record, benchmark, ttf_reports, bench_rib):
    clue = ttf_reports["clue"]
    clpl = ttf_reports["clpl"]

    rows = [
        (
            name,
            f"{summary.min_us:.4f}",
            f"{summary.mean_us:.4f}",
            f"{summary.max_us:.4f}",
        )
        for name, summary in (
            ("CLPL (ground truth)", clpl.ttf1()),
            ("CLUE (ONRTC)", clue.ttf1()),
        )
    ]
    text = format_table(["scheme", "min us", "mean us", "max us"], rows)
    text += "\n" + format_series(
        "CLUE windowed mean (us)", _series(clue, lambda s: s.ttf1_us)
    )
    text += "\n" + format_series(
        "CLPL windowed mean (us)", _series(clpl, lambda s: s.ttf1_us)
    )
    record("fig10_ttf1", text)

    # Benchmark: one incremental ONRTC update (the TTF1-CLUE kernel).
    from repro.workload.updategen import UpdateGenerator

    updater = OnrtcTrieUpdater(bench_rib)
    stream = UpdateGenerator(bench_rib, seed=31)

    def one_update():
        updater.apply(stream.next_message())

    benchmark(one_update)

    # Shape: CLUE a little longer than ground truth, same order of magnitude.
    assert clue.ttf1().mean_us > clpl.ttf1().mean_us
    assert clue.ttf1().mean_us < 10 * clpl.ttf1().mean_us
