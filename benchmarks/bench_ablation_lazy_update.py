"""Ablation — minimal vs lazy ONRTC maintenance.

The paper asserts "each routing update only causes one shift" for CLUE,
which holds for a maintenance discipline that repairs locally and lets the
table drift from minimal (``repro.compress.lazy``).  Exact minimal
maintenance (the default) occasionally re-emits wide regions.  This bench
quantifies the trade on a realistic update storm:

* TCAM slot operations per update (TTF2) and control-plane work (TTF1);
* table-size drift, and what one recompression costs to shed it.
"""

from statistics import mean

from repro.analysis.summarize import format_table
from repro.update.pipeline import ClueUpdatePipeline, default_dred_banks
from repro.workload.updategen import UpdateGenerator, UpdateParameters

MIX = UpdateParameters(
    modify_fraction=0.0, new_prefix_fraction=0.5, withdraw_fraction=0.5
)
UPDATES = 2_000


def test_ablation_lazy_update(record, benchmark, bench_rib):
    messages = UpdateGenerator(bench_rib, seed=99, parameters=MIX).take(
        UPDATES
    )

    pipelines = {
        "minimal (default)": ClueUpdatePipeline(
            bench_rib,
            dred_banks=default_dred_banks(4, 512, True),
            tcam_capacity=200_000,
        ),
        "lazy (bounded work)": ClueUpdatePipeline(
            bench_rib,
            dred_banks=default_dred_banks(4, 512, True),
            tcam_capacity=200_000,
            lazy=True,
        ),
    }
    rows = []
    reports = {}
    for name, pipeline in pipelines.items():
        report = pipeline.run(messages)
        reports[name] = (report, pipeline)
        slot_ops = (
            pipeline.totals.tcam_moves + pipeline.totals.tcam_writes
        ) / UPDATES
        rows.append(
            (
                name,
                f"{slot_ops:.2f}",
                f"{report.ttf2().mean_us:.4f}",
                f"{report.ttf2().max_us:.4f}",
                f"{report.ttf1().mean_us:.4f}",
                len(pipeline.trie_stage.table),
            )
        )

    lazy_table = pipelines["lazy (bounded work)"].trie_stage.table
    gap_before = lazy_table.minimality_gap()
    recompress_diff = lazy_table.recompress()
    text = format_table(
        [
            "maintenance",
            "slot ops/update",
            "TTF2 mean us",
            "TTF2 max us",
            "TTF1 mean us",
            "entries after storm",
        ],
        rows,
    )
    text += (
        f"\nlazy drift after {UPDATES} updates: {gap_before:.3f}x minimal; "
        f"one recompression = {recompress_diff.entry_changes} entry changes"
    )
    record("ablation_lazy_update", text)

    # Benchmark: the lazy update kernel.
    from repro.compress.lazy import LazyOnrtcTable

    table = LazyOnrtcTable(bench_rib)
    stream = UpdateGenerator(bench_rib, seed=100, parameters=MIX)

    def one_update():
        message = stream.next_message()
        table.apply(message.prefix, message.next_hop)

    benchmark(one_update)

    minimal_report, minimal_pipeline = reports["minimal (default)"]
    lazy_report, lazy_pipeline = reports["lazy (bounded work)"]
    # Lazy spends fewer TCAM ops per update and shows no tail blowup...
    assert lazy_report.ttf2().mean_us <= minimal_report.ttf2().mean_us
    # ...while the minimal pipeline's table stays smallest.
    assert len(minimal_pipeline.trie_stage.table) <= len(
        lazy_pipeline.trie_stage.table
    )
    assert gap_before >= 1.0
