"""Ablation — the DRed exclusion rule (DRed i skips chip i's prefixes).

This isolates the mechanism behind the paper's "3/4 the redundancy"
claim: at equal per-chip capacity, CLUE's exclusion rule stops foreign
packets' hit chances from being diluted by entries that can never be
searched (a packet diverted to chip i by definition does not home there).
We run the CLUE engine twice — exclusion on vs off — and compare hit
rates, then confirm exclusion-on at 3/4 capacity matches exclusion-off at
full capacity.
"""

from repro.analysis.summarize import format_table
from repro.engine.builders import build_clue_engine, measure_partition_load
from repro.engine.schemes import CluePolicy
from repro.engine.simulator import EngineConfig
from repro.workload.trafficgen import TrafficGenerator

PACKETS = 30_000


class _NoExclusionPolicy(CluePolicy):
    """CLUE's insertion flow with the exclusion rule disabled."""

    name = "clue-no-exclusion"
    exclude_own_dred = False

    def on_main_hit(self, engine, chip_index, address, prefix, next_hop):
        for other in engine.chips:  # including the home chip itself
            if other.dred.insert(prefix, next_hop, owner=chip_index):
                engine.stats.dred_insertions += 1


def _run(bench_rib, loads, capacity, exclusion):
    config = EngineConfig(chip_count=4, dred_capacity=capacity)
    built = build_clue_engine(bench_rib, config, partition_loads=loads)
    if not exclusion:
        policy = _NoExclusionPolicy()
        built.engine.scheme = policy
        for chip in built.engine.chips:
            chip.dred.exclude_own = False
    stats = built.engine.run(TrafficGenerator(bench_rib, seed=91), PACKETS)
    return stats


def test_ablation_dred_exclusion(record, benchmark, bench_rib):
    probe = build_clue_engine(bench_rib, EngineConfig(chip_count=4))
    sample = TrafficGenerator(bench_rib, seed=91).take(PACKETS)
    loads = measure_partition_load(
        probe.index, sample, probe.partition_result.count
    )

    rows = []
    results = {}
    for label, capacity, exclusion in (
        ("exclusion ON, capacity 256", 256, True),
        ("exclusion OFF, capacity 256", 256, False),
        ("exclusion ON, capacity 192 (3/4)", 192, True),
        ("exclusion OFF, capacity 256 (full)", 256, False),
    ):
        stats = _run(bench_rib, loads, capacity, exclusion)
        results[label] = stats
        rows.append(
            (
                label,
                f"{stats.dred_hit_rate:.3f}",
                f"{stats.speedup(4):.3f}",
            )
        )
    record(
        "ablation_dred_exclusion",
        format_table(["configuration", "hit rate", "speedup"], rows),
    )

    benchmark.pedantic(
        lambda: _run(bench_rib, loads, 256, True), rounds=3, iterations=1
    )

    # Exclusion can only help at equal capacity...
    assert (
        results["exclusion ON, capacity 256"].dred_hit_rate
        >= results["exclusion OFF, capacity 256"].dred_hit_rate - 0.01
    )
    # ...and 3/4 capacity with exclusion matches full capacity without —
    # the paper's redundancy-reduction claim in mechanism form.
    assert (
        results["exclusion ON, capacity 192 (3/4)"].dred_hit_rate
        >= results["exclusion OFF, capacity 256 (full)"].dred_hit_rate - 0.02
    )
