"""Durability cost — journal overhead on the update hot path, restore time.

The write-ahead journal sits in front of every control-plane update, so
its cost is pure overhead on TTF1.  This bench measures (a) updates/sec
with the journal off vs. on at several fsync cadences, and (b) wall-clock
restore time as a function of the journal suffix replayed on top of the
snapshot.  Results land in ``results/BENCH_persist.json`` alongside the
human-readable table.
"""

import json
import time
from pathlib import Path

from repro.analysis.summarize import format_table
from repro.core import ClueSystem, SystemConfig
from repro.engine.simulator import EngineConfig
from repro.persist import PersistenceManager
from repro.workload.updategen import UpdateGenerator

UPDATES = 1_500
SYNC_INTERVALS = (1, 16, 64)
SUFFIX_LENGTHS = (100, 400, 1_500)


def make_system(bench_rib):
    return ClueSystem(
        bench_rib, SystemConfig(engine=EngineConfig(chip_count=4))
    )


def updates_for(bench_rib):
    return UpdateGenerator(list(bench_rib), seed=47).take(UPDATES)


def timed_apply(target, messages):
    start = time.perf_counter()
    for message in messages:
        target.apply_update(message)
    return time.perf_counter() - start


def test_persist_overhead_and_restore(record, bench_rib, tmp_path):
    messages = updates_for(bench_rib)

    throughput = {}
    baseline = make_system(bench_rib)
    throughput["no-journal"] = UPDATES / timed_apply(baseline, messages)

    for interval in SYNC_INTERVALS:
        system = make_system(bench_rib)
        manager = PersistenceManager(
            system,
            tmp_path / f"sync-{interval}",
            sync_interval=interval,
        )
        throughput[f"journal fsync={interval}"] = UPDATES / timed_apply(
            manager, messages
        )
        manager.close()

    restores = []
    for suffix in SUFFIX_LENGTHS:
        directory = tmp_path / f"restore-{suffix}"
        system = make_system(bench_rib)
        manager = PersistenceManager(system, directory, sync_interval=64)
        for message in messages[:suffix]:
            manager.apply_update(message)
        fingerprint = system.state_fingerprint()
        manager.crash()
        restored, report = PersistenceManager.restore(directory)
        assert restored.system.state_fingerprint() == fingerprint
        assert report.audit is not None and report.audit.ok
        restores.append(
            {
                "replayed_records": report.replayed_records,
                "time_to_recovered_us": report.time_to_recovered_us,
            }
        )
        restored.close()

    base = throughput["no-journal"]
    rows = [
        (name, f"{rate:,.0f}", f"{base / rate:.2f}x")
        for name, rate in throughput.items()
    ]
    text = format_table(["update path", "updates/sec", "slowdown"], rows)
    text += "\nrestore time vs journal suffix:\n" + format_table(
        ["replayed records", "time to recovered (us)"],
        [
            (entry["replayed_records"], f"{entry['time_to_recovered_us']:,}")
            for entry in restores
        ],
    )
    record("persist_overhead", text)

    payload = {
        "updates": UPDATES,
        "updates_per_sec": {k: round(v, 1) for k, v in throughput.items()},
        "slowdown_vs_no_journal": {
            name: round(base / rate, 3) for name, rate in throughput.items()
        },
        "restore": restores,
    }
    # Machine-readable twin of the text block, next to the other results.
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_persist.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="ascii"
    )

    # Durability must cost, not corrupt: every journaled run stayed
    # byte-identical to the baseline's control-plane state.
    assert (
        baseline.state_fingerprint()
        == system.state_fingerprint()
    )
    # Replaying a longer suffix can't be faster than a shorter one by an
    # order of magnitude the wrong way round (sanity, not a perf gate).
    assert restores[-1]["replayed_records"] > restores[0]["replayed_records"]
