"""Engine throughput — reference trie vs. flattened fast path.

The first engine-throughput trajectory point (every earlier bench measured
*what* the engine computes; this one measures how fast the simulator gets
there).  Both backends run the seeded Figure 15 workload — same RIB, same
partition placement, same pre-generated address stream — and must produce
**byte-identical** statistics fingerprints; only then are the packets/sec
and cycles/sec numbers comparable, and only then do they land in
``results/BENCH_engine.json``.

Two partition→chip placements are measured: the paper's natural Figure 15
mapping (``fig15``, the primary configuration the ≥5x gate applies to)
and the Table II adversarial mapping (``adversarial``, which pins the
hottest partitions on chip 0 and makes the run divert-heavy — the
configuration that stresses the DRed fast path).

Runs two ways:

* ``python benchmarks/bench_engine.py`` — the full ≥5x gate (200k packets)
  that produces the committed ``BENCH_engine.json``;
* ``python benchmarks/bench_engine.py --quick`` — CI's bench-smoke: a
  small run that still asserts fingerprint equality and checks the fast
  backend against the ``floor_packets_per_sec`` stored in the committed
  JSON (a conservative lower bound, not a race: it only trips on a
  regression measured in multiples, never on machine jitter).

Also collected by ``pytest benchmarks/`` as a quick-mode test.
"""

import argparse
import gc
import json
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    # Standalone invocation: make src/ importable without installation.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.summarize import format_table
from repro.engine.builders import (
    build_clue_engine,
    map_partitions_to_chips,
    measure_partition_load,
)
from repro.engine.fastlpm import BackendMismatchError
from repro.engine.simulator import EngineConfig
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters

RESULTS_DIR = Path(__file__).resolve().parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_engine.json"
QUICK_RESULT_FILE = RESULTS_DIR / "BENCH_engine_quick.json"

#: Figure 15 settings (4 chips, 4 clocks/lookup, 256 FIFO, 1024 DRed).
RIB_SEED = 101
RIB_SIZE = 8_000
TRAFFIC_SEED = 61
FIG15_TRAFFIC = TrafficParameters(zipf_exponent=1.4)

FULL_PACKETS = 200_000
QUICK_PACKETS = 20_000
#: The acceptance gate for the full run.
REQUIRED_SPEEDUP = 5.0
#: Timing repetitions per backend.  Reps alternate trie/fast so machine
#: noise (frequency scaling, neighbours) hits both backends alike; each
#: backend reports its best rep — the run closest to the actual cost of
#: the simulation rather than of the machine's distractions.
RUN_REPS = 3


def engine_config(backend):
    return EngineConfig(
        chip_count=4,
        lookup_cycles=4,
        queue_capacity=256,
        dred_capacity=1024,
        arrivals_per_cycle=1.0,
        lookup_backend=backend,
    )


def adversarial_loads(rib, packets):
    """The Table II adversarial placement used by the Fig. 15 bench."""
    probe = build_clue_engine(rib, engine_config("trie"))
    sample = TrafficGenerator(
        rib, seed=TRAFFIC_SEED, parameters=FIG15_TRAFFIC
    ).take(packets)
    loads = measure_partition_load(
        probe.index, sample, probe.partition_result.count
    )
    # The mapping itself is derived inside build_clue_engine; reuse the
    # measured loads so every backend sees the identical placement.
    map_partitions_to_chips(len(loads), 4, loads)
    return loads, sample


def run_backend(rib, loads, addresses, backend):
    """Build and run one engine; returns (stats, build_sec, run_sec).

    The timed region runs with the cyclic collector paused (standard
    benchmarking practice; both backends get identical treatment): the
    engine allocates a packet-rate stream of short-lived objects, and GC
    pauses otherwise inject double-digit-percent noise that swamps the
    backend comparison.
    """
    build_start = time.perf_counter()
    built = build_clue_engine(rib, engine_config(backend), partition_loads=loads)
    build_sec = time.perf_counter() - build_start
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        run_start = time.perf_counter()
        stats = built.engine.run(iter(addresses), len(addresses))
        run_sec = time.perf_counter() - run_start
    finally:
        if gc_was_enabled:
            gc.enable()
    return stats, build_sec, run_sec


def bench_trafficgen(rib, count):
    """Satellite: batched take() vs. the per-call next_packet() loop."""
    single = TrafficGenerator(rib, seed=TRAFFIC_SEED, parameters=FIG15_TRAFFIC)
    start = time.perf_counter()
    loop_addresses = [single.next_packet() for _ in range(count)]
    loop_sec = time.perf_counter() - start
    batched = TrafficGenerator(rib, seed=TRAFFIC_SEED, parameters=FIG15_TRAFFIC)
    start = time.perf_counter()
    take_addresses = batched.take(count)
    take_sec = time.perf_counter() - start
    if take_addresses != loop_addresses:
        raise AssertionError("take() diverged from the next_packet() stream")
    return {
        "addresses": count,
        "next_packet_per_sec": round(count / loop_sec, 1),
        "take_per_sec": round(count / take_sec, 1),
        "take_speedup": round(loop_sec / take_sec, 3),
    }


def run_bench(packets, rib=None):
    """Run the reference/fast comparison; returns the JSON payload."""
    if rib is None:
        rib = generate_rib(RIB_SEED, RibParameters(size=RIB_SIZE))
    rib = list(rib)
    loads, warm_sample = adversarial_loads(rib, packets)
    addresses = TrafficGenerator(
        rib, seed=TRAFFIC_SEED, parameters=FIG15_TRAFFIC
    ).take(packets)

    placements = {
        "fig15": run_placement(rib, None, addresses),
        "adversarial": run_placement(rib, loads, addresses),
    }

    # Exercise the parity-checking backend on a slice of the same stream
    # (it cross-checks every lookup, so a short run suffices).
    verify_stats, _, _ = run_backend(
        rib, None, addresses[: min(2_000, packets)], "verify"
    )
    if verify_stats.completions != min(2_000, packets):
        raise AssertionError("verify backend lost packets")

    primary = placements["fig15"]
    return {
        "workload": {
            "rib_seed": RIB_SEED,
            "rib_size": len(rib),
            "traffic_seed": TRAFFIC_SEED,
            "zipf_exponent": FIG15_TRAFFIC.zipf_exponent,
            "packets": packets,
            "chips": 4,
            "partition_loads_sample": len(warm_sample),
        },
        # The primary (Fig. 15 natural-placement) comparison stays at the
        # top level: the ≥5x gate, the CI floor check and older tooling
        # all read these keys.
        "stats_fingerprint": primary["stats_fingerprint"],
        "backends": primary["backends"],
        "fast_over_trie_packets_per_sec": primary[
            "fast_over_trie_packets_per_sec"
        ],
        "placements": placements,
        "trafficgen": bench_trafficgen(rib, packets),
    }


def run_placement(rib, loads, addresses):
    """Alternating-rep trie/fast comparison for one chip placement."""
    results = {}
    fingerprints = {}
    rep_times = {"trie": [], "fast": []}
    for _rep in range(RUN_REPS):
        for backend in ("trie", "fast"):
            stats, build_sec, run_sec = run_backend(
                rib, loads, addresses, backend
            )
            fingerprint = fingerprints.setdefault(
                backend, stats.fingerprint()
            )
            if stats.fingerprint() != fingerprint:
                raise AssertionError(
                    f"{backend} backend diverged across repetitions"
                )
            rep_times[backend].append(round(run_sec, 4))
            best = results.get(backend)
            if best is not None and best["run_sec"] <= run_sec:
                continue
            results[backend] = {
                "build_sec": round(build_sec, 4),
                "run_sec": round(run_sec, 4),
                "packets_per_sec": round(stats.completions / run_sec, 1),
                "cycles_per_sec": round(stats.cycles / run_sec, 1),
                "cycles": stats.cycles,
                "dred_hit_rate": round(stats.dred_hit_rate, 4),
                "speedup_factor": round(stats.speedup(4), 3),
            }
    for backend in results:
        results[backend]["rep_run_secs"] = rep_times[backend]
    if fingerprints["trie"] != fingerprints["fast"]:
        raise AssertionError(
            "stats fingerprints diverged between backends: "
            f"trie={fingerprints['trie']} fast={fingerprints['fast']}"
        )
    speedup = (
        results["fast"]["packets_per_sec"] / results["trie"]["packets_per_sec"]
    )
    return {
        "stats_fingerprint": fingerprints["fast"],
        "backends": results,
        "fast_over_trie_packets_per_sec": round(speedup, 3),
    }


def render(payload):
    rows = [
        (
            backend,
            f"{entry['packets_per_sec']:,.0f}",
            f"{entry['cycles_per_sec']:,.0f}",
            f"{entry['run_sec']:.2f}s",
            f"{entry['build_sec']:.2f}s",
        )
        for backend, entry in payload["backends"].items()
    ]
    text = format_table(
        ["backend", "packets/sec", "cycles/sec", "run", "build"], rows
    )
    traffic = payload["trafficgen"]
    adversarial = payload["placements"]["adversarial"]
    text += (
        f"\nfast/trie packets-per-sec ratio (fig15): "
        f"{payload['fast_over_trie_packets_per_sec']:.2f}x"
        f"\nfast/trie packets-per-sec ratio (adversarial): "
        f"{adversarial['fast_over_trie_packets_per_sec']:.2f}x"
        f"\nstats fingerprint (both backends): "
        f"{payload['stats_fingerprint'][:16]}…"
        f"\ntrafficgen take() vs next_packet(): "
        f"{traffic['take_speedup']:.2f}x"
    )
    return text


def stored_floor():
    if not RESULT_FILE.exists():
        return None
    return json.loads(RESULT_FILE.read_text()).get("floor_packets_per_sec")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small packet count, floor check instead of 5x gate",
    )
    args = parser.parse_args(argv)

    packets = QUICK_PACKETS if args.quick else FULL_PACKETS
    try:
        payload = run_bench(packets)
    except (AssertionError, BackendMismatchError) as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 1
    print(render(payload))

    RESULTS_DIR.mkdir(exist_ok=True)
    if args.quick:
        floor = stored_floor()
        payload["floor_packets_per_sec"] = floor
        QUICK_RESULT_FILE.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="ascii"
        )
        fast_rate = payload["backends"]["fast"]["packets_per_sec"]
        if floor is not None and fast_rate < floor:
            print(
                f"fast backend regressed: {fast_rate:,.0f} packets/sec "
                f"below the stored floor {floor:,.0f}",
                file=sys.stderr,
            )
            return 1
        return 0

    ratio = payload["fast_over_trie_packets_per_sec"]
    if ratio < REQUIRED_SPEEDUP:
        print(
            f"fast backend only {ratio:.2f}x over trie "
            f"(gate: {REQUIRED_SPEEDUP}x)",
            file=sys.stderr,
        )
        return 1
    # The CI floor: deliberately far below the measured rate so it only
    # trips on order-of-magnitude regressions, not machine variance.
    previous = stored_floor()
    measured = payload["backends"]["fast"]["packets_per_sec"]
    payload["floor_packets_per_sec"] = (
        previous if previous is not None else round(measured / 10.0)
    )
    RESULT_FILE.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="ascii"
    )
    print(f"wrote {RESULT_FILE}")
    return 0


def test_engine_throughput(record, bench_rib):
    """Pytest entry point: quick-mode comparison on the shared bench RIB."""
    payload = run_bench(QUICK_PACKETS, rib=bench_rib)
    record("engine_throughput", render(payload))
    assert payload["fast_over_trie_packets_per_sec"] > 1.0
    assert payload["trafficgen"]["take_speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
