"""Figure 17 — DRed size vs hit rate: CLUE above CLPL at every size.

Paper: because DRed *i* never wastes slots on chip *i*'s own prefixes (and
CLUE caches the coarser disjoint entries instead of fine RRC-ME
expansions), CLUE reaches a higher hit rate than CLPL at the same DRed
size — and hence (via Figure 16) a higher speedup.
"""

from repro.analysis.summarize import format_table
from repro.engine.builders import (
    build_clpl_engine,
    build_clue_engine,
    measure_partition_load,
)
from repro.engine.simulator import EngineConfig
from repro.workload.trafficgen import TrafficGenerator

PACKETS = 30_000
DRED_SIZES = (64, 128, 256, 512, 1024)


def test_fig17_hitrate_vs_dred_size(record, benchmark, bench_rib):
    probe = build_clue_engine(bench_rib, EngineConfig(chip_count=4))
    sample = TrafficGenerator(bench_rib, seed=81).take(PACKETS)
    loads = measure_partition_load(
        probe.index, sample, probe.partition_result.count
    )

    rows = []
    curves = {"CLUE": [], "CLPL": []}
    for capacity in DRED_SIZES:
        config = EngineConfig(chip_count=4, dred_capacity=capacity)
        clue = build_clue_engine(bench_rib, config, partition_loads=loads)
        clpl = build_clpl_engine(bench_rib, config, partition_loads=loads)
        clue_stats = clue.engine.run(
            TrafficGenerator(bench_rib, seed=81), PACKETS
        )
        clpl_stats = clpl.engine.run(
            TrafficGenerator(bench_rib, seed=81), PACKETS
        )
        curves["CLUE"].append(clue_stats.dred_hit_rate)
        curves["CLPL"].append(clpl_stats.dred_hit_rate)
        rows.append(
            (
                capacity,
                f"{clue_stats.dred_hit_rate:.3f}",
                f"{clpl_stats.dred_hit_rate:.3f}",
            )
        )
    record(
        "fig17_hitrate",
        format_table(["DRed size", "CLUE hit rate", "CLPL hit rate"], rows),
    )

    # Benchmark: DRed cache operations (the kernel behind every point).
    from repro.engine.dred import DredCache

    cache = DredCache(1024, 0, True)
    addresses = iter(sample * 4)
    prefixes = [route[0] for route in bench_rib[:4_000]]
    hops = [route[1] for route in bench_rib[:4_000]]
    state = {"index": 0}

    def cache_ops():
        i = state["index"] = (state["index"] + 1) % 4_000
        cache.insert(prefixes[i], hops[i], owner=1)
        cache.lookup(next(addresses))

    benchmark(cache_ops)

    # Shape: CLUE's curve dominates CLPL's; both rise with capacity.
    for clue_rate, clpl_rate in zip(curves["CLUE"], curves["CLPL"]):
        assert clue_rate >= clpl_rate - 0.02
    assert curves["CLUE"][-1] > curves["CLUE"][0]
    assert sum(curves["CLUE"]) / len(DRED_SIZES) > sum(curves["CLPL"]) / len(
        DRED_SIZES
    )
