"""Ablation — lookup technologies: TCAM vs DIR-24-8 vs multibit trie.

The paper's introduction motivates TCAMs with "software-based solutions
might need multiple memory accesses".  This bench quantifies that trade on
the same table and traffic: accesses per lookup, memory slots, and the
update cost profile (DIR-24-8's /8-repaint pathology vs CLUE's O(1)).
"""

from statistics import mean

from repro.analysis.summarize import format_table
from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.net.prefix import Prefix
from repro.swlookup.dir248 import Dir248Table
from repro.swlookup.multibit import MultibitTrie
from repro.trie.trie import BinaryTrie
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateParameters

PACKETS = 10_000
UPDATES = 300
MIX = UpdateParameters(
    modify_fraction=0.0, new_prefix_fraction=0.5, withdraw_fraction=0.5
)


def test_ablation_sw_lookup(record, benchmark, bench_rib):
    routes = bench_rib[:4_000]
    addresses = TrafficGenerator(routes, seed=77).take(PACKETS)
    messages = UpdateGenerator(routes, seed=78, parameters=MIX).take(UPDATES)

    dir248 = Dir248Table(routes)
    multibit = MultibitTrie(routes)
    compressed = compress(BinaryTrie.from_routes(routes), CompressionMode.DONT_CARE)

    for address in addresses:
        dir248.lookup(address)
        multibit.lookup(address)

    dir248_writes = []
    multibit_writes = []
    for message in messages:
        if message.next_hop is None:
            dir248_writes.append(dir248.delete(message.prefix))
            multibit_writes.append(multibit.delete(message.prefix))
        else:
            dir248_writes.append(dir248.insert(message.prefix, message.next_hop))
            multibit_writes.append(
                multibit.insert(message.prefix, message.next_hop)
            )

    rows = [
        (
            "TCAM + ONRTC (CLUE)",
            "1.00",
            len(compressed),
            "<= 1 move",
            "1",
        ),
        (
            "DIR-24-8",
            f"{dir248.accesses_per_lookup():.2f}",
            dir248.memory_slots(),
            f"{mean(dir248_writes):.1f}",
            max(dir248_writes),
        ),
        (
            "multibit 8-8-8-8",
            f"{multibit.accesses_per_lookup():.2f}",
            multibit.memory_slots(),
            f"{mean(multibit_writes):.1f}",
            max(multibit_writes),
        ),
    ]
    record(
        "ablation_sw_lookup",
        format_table(
            [
                "technology",
                "accesses/lookup",
                "memory slots",
                "mean writes/update",
                "max writes/update",
            ],
            rows,
        ),
    )

    # Benchmark: the multibit lookup kernel.
    index = {"i": 0}

    def one_lookup():
        index["i"] = (index["i"] + 1) % PACKETS
        multibit.lookup(addresses[index["i"]])

    benchmark(one_lookup)

    # Shape: software needs >1 access on average; DIR-24-8 buys low access
    # counts with enormous memory; CLUE's TCAM table is the smallest.
    assert dir248.accesses_per_lookup() >= 1.0
    assert multibit.accesses_per_lookup() > 1.0
    assert dir248.memory_slots() > multibit.memory_slots() > len(compressed)
    # The DIR-24-8 short-prefix pathology shows up as a large max.
    assert max(dir248_writes) >= 256 or max(dir248_writes) >= max(multibit_writes)
