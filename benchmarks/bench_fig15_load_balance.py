"""Figure 15 — load balancing under the Table II adversarial mapping.

Paper settings: 4 chips, 4 clocks per lookup, one arrival per clock,
256-deep FIFOs, 1024-prefix DRed.  The grey 'Original' bars are the
per-chip shares of the adversarial mapping; the 'CLUE' bars show the
traffic the dynamic redundancy actually spread across chips.
"""

from repro.analysis.evenness import jain_fairness, max_mean_ratio
from repro.analysis.summarize import format_percent, format_table
from repro.engine.builders import (
    build_clue_engine,
    map_partitions_to_chips,
    measure_partition_load,
)
from repro.engine.simulator import EngineConfig
from repro.workload.trafficgen import TrafficGenerator, TrafficParameters

PACKETS = 60_000

#: Same calibrated CAIDA-like skew as bench_table2_workload.
FIG15_TRAFFIC = TrafficParameters(zipf_exponent=1.4)


def test_fig15_load_balance(record, benchmark, bench_rib):
    config = EngineConfig(
        chip_count=4,
        lookup_cycles=4,
        queue_capacity=256,
        dred_capacity=1024,
        arrivals_per_cycle=1.0,
    )
    probe = build_clue_engine(bench_rib, config)
    sample = TrafficGenerator(
        bench_rib, seed=61, parameters=FIG15_TRAFFIC
    ).take(PACKETS)
    loads = measure_partition_load(
        probe.index, sample, probe.partition_result.count
    )
    mapping = map_partitions_to_chips(len(loads), 4, loads)
    original = [0] * 4
    for partition, load in enumerate(loads):
        original[mapping[partition]] += load
    total = sum(original)
    original_shares = [load / total for load in original]

    built = build_clue_engine(bench_rib, config, partition_loads=loads)
    stats = built.engine.run(
        TrafficGenerator(bench_rib, seed=61, parameters=FIG15_TRAFFIC), PACKETS
    )
    balanced_shares = stats.chip_load_shares()

    rows = [
        (
            f"TCAM{chip + 1}",
            format_percent(original_shares[chip]),
            format_percent(balanced_shares[chip]),
        )
        for chip in range(4)
    ]
    text = format_table(["chip", "original", "CLUE"], rows)
    text += (
        f"\nmax/mean: original {max_mean_ratio(original_shares):.2f}"
        f" -> CLUE {max_mean_ratio(balanced_shares):.2f}"
        f" | Jain fairness: {jain_fairness(original_shares):.3f}"
        f" -> {jain_fairness(balanced_shares):.3f}"
        f"\nspeedup {stats.speedup(4):.2f}, DRed hit rate "
        f"{stats.dred_hit_rate:.1%}"
    )
    record("fig15_load_balance", text)

    # Benchmark: a short engine run at the paper's settings.
    def short_run():
        engine = build_clue_engine(
            bench_rib, config, partition_loads=loads
        ).engine
        engine.run(TrafficGenerator(bench_rib, seed=62), 4_000)

    benchmark.pedantic(short_run, rounds=3, iterations=1)

    # Shape: the adversarial skew flattens dramatically.
    assert max(original_shares) > 0.45
    assert max(balanced_shares) < 0.30
    assert jain_fairness(balanced_shares) > jain_fairness(original_shares)
