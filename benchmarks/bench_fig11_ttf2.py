"""Figure 11 — TTF2 (TCAM update time): CLUE O(1) vs CLPL's PLO layout.

Paper: CLPL's prefix-length-ordered layout needs 14.994 shifts on average
(0.3558–0.3782 µs, mean 0.3598 µs at 24 ns/shift); CLUE needs at most one
shift per compressed-table entry change, 0.024 µs in the paper's idealised
accounting.
"""

from repro.analysis.summarize import format_series, format_table
from repro.update.tcam_update import PloTcamMirror
from repro.workload.updategen import UpdateGenerator, UpdateParameters


def _series(report, selector, windows=12):
    span = report.samples[-1].timestamp if report.samples else 1.0
    return [
        window.mean_us
        for window in report.windowed(selector, span / windows + 1e-9)
    ]


def test_fig11_ttf2(record, benchmark, ttf_reports, bench_rib):
    clue = ttf_reports["clue"]
    clpl = ttf_reports["clpl"]
    clpl_pipeline = ttf_reports["clpl_pipeline"]

    avg_shifts = (
        clpl_pipeline.totals.tcam_moves / clpl_pipeline.totals.updates
    )
    rows = [
        (
            name,
            f"{summary.min_us:.4f}",
            f"{summary.mean_us:.4f}",
            f"{summary.max_us:.4f}",
        )
        for name, summary in (
            ("CLPL (PLO layout)", clpl.ttf2()),
            ("CLUE (unordered)", clue.ttf2()),
        )
    ]
    text = format_table(["scheme", "min us", "mean us", "max us"], rows)
    text += f"\nCLPL average shifts/update: {avg_shifts:.3f} (paper: 14.994)"
    text += "\n" + format_series(
        "CLUE windowed mean (us)", _series(clue, lambda s: s.ttf2_us)
    )
    text += "\n" + format_series(
        "CLPL windowed mean (us)", _series(clpl, lambda s: s.ttf2_us)
    )
    record("fig11_ttf2", text)

    # Benchmark: one PLO-layout TCAM update (the costly baseline kernel).
    mirror = PloTcamMirror(bench_rib, capacity=200_000)
    stream = UpdateGenerator(
        bench_rib,
        seed=37,
        parameters=UpdateParameters(
            modify_fraction=0.0,
            new_prefix_fraction=0.5,
            withdraw_fraction=0.5,
        ),
    )

    def one_update():
        mirror.apply(stream.next_message())

    benchmark(one_update)

    # Shape: an order of magnitude between the layouts; PLO lands near the
    # paper's ~15-shift average.
    assert 8 <= avg_shifts <= 25
    assert clpl.ttf2().mean_us / clue.ttf2().mean_us > 3.0
