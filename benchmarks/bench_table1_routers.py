"""Table I — the 12 collector datasets (synthetic stand-ins).

Regenerates the inventory of routing tables the evaluation draws on and
benchmarks table construction itself.
"""

from repro.analysis.summarize import format_table
from repro.trie.trie import BinaryTrie
from repro.workload.datasets import ROUTERS, router_rib
from repro.workload.ribgen import RibParameters, generate_rib

#: Keep Table I generation snappy: 1/64 of 2011-scale.
SCALE = 1 / 64


def test_table1_router_inventory(record, benchmark):
    tables = {
        router.router_id: router_rib(router, size_scale=SCALE)
        for router in ROUTERS
    }

    rows = [
        (
            router.router_id,
            router.location,
            len(tables[router.router_id]),
            len(BinaryTrie.from_routes(tables[router.router_id]).next_hops()),
        )
        for router in ROUTERS
    ]
    record(
        "table1_routers",
        format_table(["router", "location", "prefixes", "next hops"], rows),
    )

    # Benchmark: generating one collector's table from scratch.
    benchmark(
        generate_rib, ROUTERS[0].seed, RibParameters(size=rows[0][2])
    )

    assert len(rows) == 12
    assert all(row[2] > 0 for row in rows)
