"""Shared fixtures for the reproduction benchmarks.

Every benchmark module regenerates one table or figure from the paper's
Section V (see DESIGN.md §4 for the index).  Runs are deterministic; each
module prints its reproduction rows (run ``pytest benchmarks/ -s``) and
appends them to ``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workload.ribgen import RibParameters, generate_rib

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale used throughout the benches: large enough for stable shapes,
#: small enough that the whole suite runs in minutes.
BENCH_RIB_SIZE = 8_000


@pytest.fixture(scope="session")
def bench_rib():
    """The routing table all engine-level benches share (rrc01 stand-in)."""
    return generate_rib(101, RibParameters(size=BENCH_RIB_SIZE))


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def ttf_reports(bench_rib):
    """Both update pipelines run over the same 24h-style update stream.

    Shared by the Figure 10-14 benches.  The mix is structural (announce
    new / withdraw), matching the paper's replay of raw RIPE messages; the
    DRed banks are pre-warmed so TTF3 maintenance has real work.
    """
    from repro.update.pipeline import (
        ClplUpdatePipeline,
        ClueUpdatePipeline,
        default_dred_banks,
    )
    from repro.workload.updategen import UpdateGenerator, UpdateParameters

    mix = UpdateParameters(
        modify_fraction=0.0,
        new_prefix_fraction=0.5,
        withdraw_fraction=0.5,
    )
    clue = ClueUpdatePipeline(
        bench_rib, dred_banks=default_dred_banks(4, 1024, True)
    )
    clpl = ClplUpdatePipeline(
        bench_rib, dred_banks=default_dred_banks(4, 1024, False)
    )
    for prefix, hop in bench_rib[:2_000]:
        for bank in clue.dred_stage.caches:
            bank.insert(prefix, hop, owner=(bank.chip_index + 1) % 4)
        for bank in clpl.dred_stage.caches:
            bank.insert(prefix, hop, owner=bank.chip_index)
    messages = UpdateGenerator(bench_rib, seed=23, parameters=mix).take(3_000)
    return {
        "clue": clue.run(messages),
        "clpl": clpl.run(messages),
        "clue_pipeline": clue,
        "clpl_pipeline": clpl,
        "messages": messages,
    }


@pytest.fixture()
def record(results_dir, request):
    """Print a reproduction block and persist it under results/."""

    def _record(name: str, text: str) -> None:
        block = f"== {name} ==\n{text}\n"
        print("\n" + block)
        (results_dir / f"{name}.txt").write_text(block, encoding="ascii")

    return _record
