"""Figure 8 — FIB size before and after ONRTC on the 12 routers.

Paper: compressed tables average ≈71% of the original size.  The bench
prints per-router before/after/ratio and asserts the average lands in the
reproduced band.
"""

from statistics import mean

from repro.analysis.summarize import format_percent, format_table
from repro.compress.labels import CompressionMode
from repro.compress.onrtc import compress
from repro.trie.trie import BinaryTrie
from repro.workload.datasets import ROUTERS, router_rib

#: 1/32 of 2011 scale: ~12K prefixes per router, full 12-router sweep.
SCALE = 1 / 32


def test_fig8_compression_per_router(record, benchmark):
    rows = []
    ratios = []
    tries = {}
    for router in ROUTERS:
        table = router_rib(router, size_scale=SCALE)
        trie = BinaryTrie.from_routes(table)
        tries[router.router_id] = trie
        compressed = compress(trie, CompressionMode.DONT_CARE)
        ratio = len(compressed) / len(table)
        ratios.append(ratio)
        rows.append(
            (
                router.router_id,
                len(table),
                len(compressed),
                format_percent(ratio),
            )
        )
    rows.append(("average", "", "", format_percent(mean(ratios))))
    record(
        "fig8_compression",
        format_table(["router", "original", "compressed", "ratio"], rows),
    )

    # Benchmark: compressing one full router table.
    benchmark(compress, tries["rrc01"], CompressionMode.DONT_CARE)

    # Paper: ≈71% on average.  Synthetic band: 0.60–0.82.
    assert 0.60 <= mean(ratios) <= 0.82
