"""Figure 16 — speedup factor vs DRed hit rate.

Paper: measured (h, t) points for both CLPL and CLUE sit well above the
worst-case floor t = (N−1)h + 1, the two schemes' curves nearly coincide
(same hit rate ⇒ same speedup), and a cubic fit summarises each curve.
Points are produced by sweeping the DRed capacity under the adversarial
mapping of Table II.
"""

from repro.analysis.fitting import cubic_fit, polyval
from repro.analysis.speedup import required_hit_rate, worst_case_speedup
from repro.analysis.summarize import format_table
from repro.engine.builders import (
    build_clpl_engine,
    build_clue_engine,
    measure_partition_load,
)
from repro.engine.simulator import EngineConfig
from repro.workload.trafficgen import TrafficGenerator

PACKETS = 30_000
DRED_SIZES = (96, 160, 256, 512, 1024, 2048)


def _sweep(builder, bench_rib, loads):
    points = []
    for capacity in DRED_SIZES:
        config = EngineConfig(chip_count=4, dred_capacity=capacity)
        built = builder(bench_rib, config, loads)
        stats = built.engine.run(
            TrafficGenerator(bench_rib, seed=71), PACKETS
        )
        points.append((stats.dred_hit_rate, stats.speedup(4)))
    return points


def test_fig16_speedup_vs_hitrate(record, benchmark, bench_rib):
    probe = build_clue_engine(bench_rib, EngineConfig(chip_count=4))
    sample = TrafficGenerator(bench_rib, seed=71).take(PACKETS)
    loads = measure_partition_load(
        probe.index, sample, probe.partition_result.count
    )

    clue_points = _sweep(
        lambda routes, config, l: build_clue_engine(
            routes, config, partition_loads=l
        ),
        bench_rib,
        loads,
    )
    clpl_points = _sweep(
        lambda routes, config, l: build_clpl_engine(
            routes, config, partition_loads=l
        ),
        bench_rib,
        loads,
    )

    rows = []
    for scheme, points in (("CLUE", clue_points), ("CLPL", clpl_points)):
        for (hit_rate, speedup), capacity in zip(points, DRED_SIZES):
            rows.append(
                (
                    scheme,
                    capacity,
                    f"{hit_rate:.3f}",
                    f"{speedup:.3f}",
                    f"{worst_case_speedup(4, hit_rate):.3f}",
                )
            )
    text = format_table(
        ["scheme", "DRed size", "hit rate h", "speedup t", "floor (N-1)h+1"],
        rows,
    )
    fit = cubic_fit(clue_points + clpl_points)
    text += (
        "\ncubic fit t(h): "
        + " + ".join(f"{c:.3f} h^{i}" for i, c in enumerate(fit))
        + f"\nfit at h=0.9: t={polyval(fit, 0.9):.3f}"
    )
    record("fig16_speedup", text)

    # Benchmark: one engine run at a mid-sweep operating point.
    def one_point():
        config = EngineConfig(chip_count=4, dred_capacity=256)
        built = build_clue_engine(bench_rib, config, partition_loads=loads)
        built.engine.run(TrafficGenerator(bench_rib, seed=72), 5_000)

    benchmark.pedantic(one_point, rounds=3, iterations=1)

    floor_domain = required_hit_rate(4)
    for points in (clue_points, clpl_points):
        # speedup rises with hit rate
        hits = [h for h, _ in points]
        speeds = [t for _, t in points]
        assert speeds[-1] > speeds[0]
        assert hits[-1] > hits[0]
        # every in-domain point respects the worst-case floor
        for hit_rate, speedup in points:
            if hit_rate >= floor_domain:
                assert speedup >= worst_case_speedup(4, hit_rate) - 0.05
    # CLUE and CLPL land on (nearly) the same curve: compare speedups at
    # comparable hit rates.
    for clue_h, clue_t in clue_points:
        closest = min(clpl_points, key=lambda p: abs(p[0] - clue_h))
        if abs(closest[0] - clue_h) < 0.05:
            assert abs(closest[1] - clue_t) < 0.5
