"""Ablation — scaling the chip count N.

The worst-case floor t = (N−1)h + 1 predicts how speedup scales with N;
this bench sweeps N ∈ {2, 4, 8} under the adversarial mapping and checks
both the floor and the diminishing distance to the ideal t = N.
"""

from repro.analysis.speedup import required_hit_rate, worst_case_speedup
from repro.analysis.summarize import format_table
from repro.engine.builders import build_clue_engine, measure_partition_load
from repro.engine.simulator import EngineConfig
from repro.workload.trafficgen import TrafficGenerator

PACKETS = 30_000


def test_ablation_chip_count(record, benchmark, bench_rib):
    rows = []
    results = {}
    for chip_count in (2, 4, 8):
        # Offered load must scale with capacity (N chips / 4 cycles each),
        # otherwise the arrival link caps the measurable speedup at 4.
        config = EngineConfig(
            chip_count=chip_count,
            dred_capacity=1024,
            arrivals_per_cycle=chip_count / 4,
        )
        probe = build_clue_engine(bench_rib, config)
        sample = TrafficGenerator(bench_rib, seed=95).take(PACKETS)
        loads = measure_partition_load(
            probe.index, sample, probe.partition_result.count
        )
        built = build_clue_engine(bench_rib, config, partition_loads=loads)
        stats = built.engine.run(
            TrafficGenerator(bench_rib, seed=95), PACKETS
        )
        results[chip_count] = stats
        rows.append(
            (
                chip_count,
                f"{stats.dred_hit_rate:.3f}",
                f"{stats.speedup(4):.3f}",
                f"{worst_case_speedup(chip_count, stats.dred_hit_rate):.3f}",
                chip_count,
            )
        )
    record(
        "ablation_chip_count",
        format_table(
            ["chips N", "hit rate h", "speedup t", "floor", "ideal"], rows
        ),
    )

    def one_run():
        config = EngineConfig(chip_count=2, dred_capacity=1024)
        built = build_clue_engine(bench_rib, config)
        built.engine.run(TrafficGenerator(bench_rib, seed=96), 5_000)

    benchmark.pedantic(one_run, rounds=3, iterations=1)

    for chip_count, stats in results.items():
        speedup = stats.speedup(4)
        assert speedup <= chip_count + 0.01
        if stats.dred_hit_rate >= required_hit_rate(chip_count):
            floor = worst_case_speedup(chip_count, stats.dred_hit_rate)
            assert speedup >= floor - 0.05
    assert results[8].speedup(4) > results[4].speedup(4) > results[2].speedup(4)
