"""Figure 14 — total TTF (TTF1+TTF2+TTF3).

Paper: TTF-CLPL ranges 0.6303–0.8342 µs (mean 0.6664 µs); TTF-CLUE
averages 0.2690 µs, i.e. CLPL is ≈234% of CLUE.
"""

from repro.analysis.summarize import format_series, format_table


def _series(report, selector, windows=12):
    span = report.samples[-1].timestamp if report.samples else 1.0
    return [
        window.mean_us
        for window in report.windowed(selector, span / windows + 1e-9)
    ]


def test_fig14_ttf_total(record, benchmark, ttf_reports, bench_rib):
    clue = ttf_reports["clue"]
    clpl = ttf_reports["clpl"]

    ratio = clpl.total().mean_us / clue.total().mean_us
    rows = [
        (
            name,
            f"{summary.min_us:.4f}",
            f"{summary.mean_us:.4f}",
            f"{summary.max_us:.4f}",
        )
        for name, summary in (
            ("CLPL", clpl.total()),
            ("CLUE", clue.total()),
        )
    ]
    text = format_table(["scheme", "min us", "mean us", "max us"], rows)
    text += f"\ntotal TTF ratio CLPL/CLUE: {ratio:.0%} (paper: 234%)"
    text += "\n" + format_series(
        "CLUE windowed mean (us)", _series(clue, lambda s: s.total_us)
    )
    text += "\n" + format_series(
        "CLPL windowed mean (us)", _series(clpl, lambda s: s.total_us)
    )
    record("fig14_ttf_total", text)

    # Benchmark: one full CLPL update (the slower total path).
    from repro.update.pipeline import ClplUpdatePipeline, default_dred_banks
    from repro.workload.ribgen import RibParameters, generate_rib
    from repro.workload.updategen import UpdateGenerator

    routes = generate_rib(53, RibParameters(size=2_000))
    # Headroom for the benchmark's many rounds (see bench_fig13).
    pipeline = ClplUpdatePipeline(
        routes,
        dred_banks=default_dred_banks(4, 512, False),
        tcam_capacity=200_000,
    )
    stream = UpdateGenerator(routes, seed=54)

    def one_update():
        pipeline.apply(stream.next_message())

    benchmark(one_update)

    # Shape: CLPL roughly 1.5-4x CLUE's total freshness latency.
    assert 1.5 <= ratio <= 4.5
