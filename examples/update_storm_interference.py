"""Update storms vs lookup throughput — why TTF2+TTF3 matter.

The paper reports backbone routers receiving up to 35K updates/second.
Every TCAM slot operation an update needs steals a search slot from the
data path, so update efficiency *is* lookup throughput under churn.  This
example drives both engines at line rate while raising the update rate,
charging each scheme its real per-update slot operations as chip stalls.

Run with:  python examples/update_storm_interference.py
"""

from repro.analysis.summarize import format_table
from repro.engine.builders import build_clpl_engine, build_clue_engine
from repro.engine.simulator import EngineConfig
from repro.update.pipeline import (
    ClplUpdatePipeline,
    ClueUpdatePipeline,
    default_dred_banks,
)
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateParameters

MIX = UpdateParameters(
    modify_fraction=0.0, new_prefix_fraction=0.5, withdraw_fraction=0.5
)
CHUNK = 2_000
CHUNKS = 8
RATES = (0, 50, 200, 500)


def run_scheme(builder, pipeline, routes, rate):
    built = builder(routes, EngineConfig(chip_count=4))
    traffic = TrafficGenerator(routes, seed=30)
    updates = UpdateGenerator(routes, seed=31, parameters=MIX)
    engine = built.engine
    for _ in range(CHUNKS):
        engine.run(traffic, CHUNK)
        for _ in range(rate):
            message = updates.next_message()
            sample = pipeline.apply(message)
            slot_ops = round((sample.ttf2_us + sample.ttf3_us) * 1_000 / 24)
            engine.inject_stall(
                engine.home_of(message.prefix.network),
                slot_ops * engine.config.lookup_cycles,
            )
    return engine.stats.speedup(4)


def main() -> None:
    routes = generate_rib(seed=26, parameters=RibParameters(size=6_000))
    rows = []
    for rate in RATES:
        clue_speedup = run_scheme(
            build_clue_engine,
            ClueUpdatePipeline(
                routes,
                dred_banks=default_dred_banks(4, 512, True),
                tcam_capacity=200_000,
                lazy=True,
            ),
            routes,
            rate,
        )
        clpl_speedup = run_scheme(
            build_clpl_engine,
            ClplUpdatePipeline(
                routes,
                dred_banks=default_dred_banks(4, 512, False),
                tcam_capacity=200_000,
            ),
            routes,
            rate,
        )
        rows.append((rate, f"{clue_speedup:.2f}", f"{clpl_speedup:.2f}"))
    print(
        format_table(
            ["updates per 2k packets", "CLUE speedup", "CLPL speedup"], rows
        )
    )
    print(
        "\nCLUE's O(1) updates keep the data path near full speed through "
        "the storm;\nthe PLO+RRC-ME baseline spends so many slot "
        "operations per update that its\nown lookups starve — the paper's "
        "case for co-designing compression, lookup\nand update in one "
        "mechanism."
    )


if __name__ == "__main__":
    main()
