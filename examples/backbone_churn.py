"""Backbone churn: a line card surviving a BGP update storm under load.

Models the scenario the paper's introduction motivates: a backbone router
forwarding at line rate while receiving a burst of routing updates (the
paper quotes peaks of 35K messages/second).  Traffic and updates
interleave; after every storm the example proves the data plane is still
answering every lookup exactly like the control-plane table.

Run with:  python examples/backbone_churn.py
"""

from repro.analysis.summarize import format_table
from repro.core import ClueSystem
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateGenerator, UpdateParameters

ROUNDS = 6
PACKETS_PER_ROUND = 10_000
UPDATES_PER_ROUND = 500


def main() -> None:
    routes = generate_rib(seed=6, parameters=RibParameters(size=6_000))
    system = ClueSystem(routes)
    print(
        f"table {len(routes)} prefixes, compressed to "
        f"{system.compression_report().compressed_entries} "
        f"({system.compression_report().ratio:.1%})\n"
    )

    traffic = TrafficGenerator(routes, seed=7)
    storm = UpdateGenerator(
        routes,
        seed=8,
        parameters=UpdateParameters(burst_probability=0.2),
    )

    rows = []
    for round_number in range(1, ROUNDS + 1):
        stats = system.process_traffic(traffic, PACKETS_PER_ROUND)
        correct = system.engine.verify_completions()
        system.engine.reorder.released.clear()

        samples = [
            system.apply_update(message)
            for message in storm.take(UPDATES_PER_ROUND)
        ]
        mean_ttf = sum(sample.total_us for sample in samples) / len(samples)
        rows.append(
            (
                round_number,
                f"{stats.speedup(4):.2f}",
                f"{stats.dred_hit_rate:.1%}",
                "yes" if correct else "NO",
                f"{mean_ttf:.3f}",
                len(system.pipeline.trie_stage.table),
            )
        )
        assert correct, "data plane diverged from the control plane!"
        assert system.pipeline.tcam_matches_table()

    print(
        format_table(
            [
                "round",
                "speedup",
                "hit rate",
                "lookups exact",
                "mean TTF (us)",
                "compressed entries",
            ],
            rows,
        )
    )
    print(
        f"\nsurvived {ROUNDS * UPDATES_PER_ROUND} updates interleaved with "
        f"{ROUNDS * PACKETS_PER_ROUND} lookups; the TCAM mirror matched the "
        "compressed table after every round."
    )


if __name__ == "__main__":
    main()
