"""Scheme shoot-out: CLUE vs CLPL vs SLPL vs full duplication.

Loads the same routing table into all four parallel-lookup schemes and
drives identical traffic through each, reproducing the paper's core
comparison in one run: TCAM cost, speedup, hit rate and control-plane
chatter.

Run with:  python examples/scheme_shootout.py
"""

from repro.analysis.summarize import format_table
from repro.engine.builders import (
    build_clpl_engine,
    build_clue_engine,
    build_round_robin_engine,
    build_slpl_engine,
)
from repro.engine.simulator import EngineConfig
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator

PACKETS = 30_000


def main() -> None:
    routes = generate_rib(seed=3, parameters=RibParameters(size=6_000))
    config = EngineConfig(chip_count=4)
    training = TrafficGenerator(routes, seed=10).take(20_000)

    engines = {
        "CLUE": build_clue_engine(routes, config),
        "CLPL": build_clpl_engine(routes, config),
        "SLPL": build_slpl_engine(routes, training, config),
        "duplicate+RR": build_round_robin_engine(routes, config),
    }

    rows = []
    for name, built in engines.items():
        stats = built.engine.run(TrafficGenerator(routes, seed=11), PACKETS)
        covered_only = name == "CLUE"
        assert built.engine.verify_completions(covered_only=covered_only)
        rows.append(
            (
                name,
                built.total_tcam_entries,
                f"{stats.speedup(4):.2f}",
                f"{stats.dred_hit_rate:.1%}" if stats.dred_lookups else "n/a",
                stats.control_plane_interactions,
            )
        )
    print(
        format_table(
            [
                "scheme",
                "TCAM entries",
                "speedup",
                "DRed hit rate",
                "ctrl-plane msgs",
            ],
            rows,
        )
    )
    print(
        "\nNote how CLUE matches the duplicate baseline's speedup with a "
        "quarter of its TCAM cost,\nand needs zero control-plane "
        "interactions where CLPL pays one per cached prefix."
    )


if __name__ == "__main__":
    main()
