"""Update latency deep dive: modelled TTF vs Python wall clock.

The library's TTF numbers are *modelled* (operation counts × hardware
constants), which makes them deterministic and host-independent.  This
example runs both pipelines over the same update storm and reports the
modelled stage breakdown side by side with the raw Python wall time of
each control-plane step — useful for sanity-checking that the model and
the implementation agree on who does more work.

Run with:  python examples/update_latency.py
"""

import time

from repro.analysis.summarize import format_table
from repro.update.pipeline import (
    ClplUpdatePipeline,
    ClueUpdatePipeline,
    default_dred_banks,
)
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.updategen import UpdateGenerator, UpdateParameters

UPDATES = 2_000


def main() -> None:
    routes = generate_rib(seed=20, parameters=RibParameters(size=5_000))
    mix = UpdateParameters(
        modify_fraction=0.0,
        new_prefix_fraction=0.5,
        withdraw_fraction=0.5,
    )
    messages = UpdateGenerator(routes, seed=21, parameters=mix).take(UPDATES)

    pipelines = {
        "CLUE": ClueUpdatePipeline(
            routes, dred_banks=default_dred_banks(4, 1024, True)
        ),
        "CLPL": ClplUpdatePipeline(
            routes, dred_banks=default_dred_banks(4, 1024, False)
        ),
    }
    # Warm the DRed banks so maintenance has real victims.
    for pipeline in pipelines.values():
        for prefix, hop in routes[:1_500]:
            for bank in pipeline.dred_stage.caches:
                bank.insert(prefix, hop, owner=(bank.chip_index + 1) % 4)

    rows = []
    for name, pipeline in pipelines.items():
        started = time.perf_counter()
        report = pipeline.run(messages)
        wall_seconds = time.perf_counter() - started
        rows.append(
            (
                name,
                f"{report.ttf1().mean_us:.4f}",
                f"{report.ttf2().mean_us:.4f}",
                f"{report.ttf3().mean_us:.4f}",
                f"{report.total().mean_us:.4f}",
                f"{wall_seconds * 1e6 / UPDATES:.1f}",
            )
        )
    print(
        format_table(
            [
                "pipeline",
                "TTF1 (us)",
                "TTF2 (us)",
                "TTF3 (us)",
                "total (us)",
                "python wall/update (us)",
            ],
            rows,
        )
    )

    clue = pipelines["CLUE"]
    clpl = pipelines["CLPL"]
    print(
        f"\noperation totals over {UPDATES} updates:"
        f"\n  CLUE: {clue.totals.tcam_moves} TCAM moves, "
        f"{clue.totals.dred_ops} DRed ops, 0 SRAM walks"
        f"\n  CLPL: {clpl.totals.tcam_moves} TCAM moves, "
        f"{clpl.totals.dred_ops} DRed ops, "
        f"{clpl.totals.sram_accesses} SRAM accesses"
    )
    print(
        "\nthe modelled ratios track the wall-clock ratios: the baseline "
        "does strictly more work at every stage that touches the data plane."
    )


if __name__ == "__main__":
    main()
