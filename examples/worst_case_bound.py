"""The worst-case speedup bound, measured: t ≥ (N−1)·h + 1.

Reproduces Section III-D's analysis experimentally: the partition→chip
mapping is deliberately adversarial (all hot partitions on chip 1, as in
Table II), the DRed capacity is swept to move the hit rate h, and each
measured speedup is compared against the theoretical floor.

Run with:  python examples/worst_case_bound.py
"""

from repro.analysis.speedup import required_hit_rate, worst_case_speedup
from repro.analysis.summarize import format_table
from repro.engine.builders import build_clue_engine, measure_partition_load
from repro.engine.simulator import EngineConfig
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator

PACKETS = 25_000
DRED_SIZES = (128, 192, 256, 384, 512, 1024)
CHIPS = 4


def main() -> None:
    routes = generate_rib(seed=12, parameters=RibParameters(size=6_000))

    probe = build_clue_engine(routes, EngineConfig(chip_count=CHIPS))
    sample = TrafficGenerator(routes, seed=13).take(PACKETS)
    loads = measure_partition_load(
        probe.index, sample, probe.partition_result.count
    )

    rows = []
    for capacity in DRED_SIZES:
        config = EngineConfig(chip_count=CHIPS, dred_capacity=capacity)
        built = build_clue_engine(routes, config, partition_loads=loads)
        stats = built.engine.run(TrafficGenerator(routes, seed=13), PACKETS)
        hit_rate = stats.dred_hit_rate
        floor = worst_case_speedup(CHIPS, hit_rate)
        in_domain = hit_rate >= required_hit_rate(CHIPS)
        rows.append(
            (
                capacity,
                f"{hit_rate:.3f}",
                f"{stats.speedup(4):.3f}",
                f"{floor:.3f}",
                "yes" if in_domain else "no (below (N-2)/(N-1))",
                "OK" if (not in_domain or stats.speedup(4) >= floor - 0.05)
                else "VIOLATED",
            )
        )
    print(
        format_table(
            ["DRed size", "h", "t measured", "(N-1)h+1", "in domain", "bound"],
            rows,
        )
    )
    print(
        f"\nthe floor applies once h >= (N-2)/(N-1) = "
        f"{required_hit_rate(CHIPS):.3f}; every in-domain point must sit on "
        "or above it."
    )


if __name__ == "__main__":
    main()
