"""Quickstart: compress a table, look up packets, apply a routing update.

Run with:  python examples/quickstart.py
"""

from repro.core import ClueSystem
from repro.net.prefix import Prefix, format_address
from repro.workload.ribgen import RibParameters, generate_rib
from repro.workload.trafficgen import TrafficGenerator
from repro.workload.updategen import UpdateKind, UpdateMessage


def main() -> None:
    # 1. A synthetic routing table (deterministic stand-in for a RIPE RIB).
    routes = generate_rib(seed=1, parameters=RibParameters(size=5_000))
    print(f"routing table: {len(routes)} prefixes")

    # 2. Build the integrated CLUE system: ONRTC compression, even
    #    partitioning over 4 TCAMs, dynamic redundancy, update pipeline.
    system = ClueSystem(routes)
    report = system.compression_report()
    print(
        f"ONRTC compression: {report.original_entries} -> "
        f"{report.compressed_entries} entries ({report.ratio:.1%})"
    )

    # 3. Look up a destination.
    prefix, expected_hop = routes[0]
    address = prefix.network
    print(
        f"lookup {format_address(address)} -> next hop "
        f"{system.lookup(address)} (table says {expected_hop})"
    )

    # 4. Push traffic through the parallel lookup engine.
    stats = system.process_traffic(TrafficGenerator(routes, seed=2), 20_000)
    print(
        f"parallel lookup: speedup {stats.speedup(4):.2f} over one TCAM, "
        f"DRed hit rate {stats.dred_hit_rate:.1%}, per-chip load "
        f"{[f'{share:.1%}' for share in stats.chip_load_shares()]}"
    )
    assert system.engine.verify_completions()

    # 5. Apply a routing update and see its Time-To-Fresh.
    update = UpdateMessage(
        UpdateKind.ANNOUNCE, Prefix.parse("203.0.113.0/24"), 7, 0.0
    )
    sample = system.apply_update(update)
    print(
        f"update TTF: trie {sample.ttf1_us:.3f} us, "
        f"TCAM {sample.ttf2_us:.3f} us, DRed {sample.ttf3_us:.3f} us "
        f"(total {sample.total_us:.3f} us)"
    )
    print(f"lookup after update -> {system.lookup(Prefix.parse('203.0.113.0/24').network)}")


if __name__ == "__main__":
    main()
